// Directory-manipulation syscalls (native API side) and the rdsp instruction.

#include <gtest/gtest.h>

#include "src/vm/assembler.h"
#include "src/vm/cpu.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using kernel::SyscallApi;
using test::kUserUid;
using test::World;

int RunUser(World& world, kernel::NativeTask::Entry fn) {
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.cwd = "/u/user";
  const int32_t pid = world.host("brick").SpawnNative("fs", std::move(fn), opts);
  world.RunUntilExited("brick", pid);
  return world.ExitInfoOf("brick", pid).exit_code;
}

TEST(FsSyscalls, MkdirCreatesOwnedDirectory) {
  World world;
  const int code = RunUser(world, [](SyscallApi& api) {
    if (!api.Mkdir("newdir", 0755).ok()) return 1;
    if (api.Mkdir("newdir", 0755).error() != Errno::kExist) return 2;
    if (!api.Chdir("newdir").ok()) return 3;
    const Result<int> fd = api.Creat("inside", 0644);  // owned dir: writable
    return fd.ok() ? 0 : 4;
  });
  EXPECT_EQ(code, 0);
  EXPECT_TRUE(world.FileExists("brick", "/u/user/newdir/inside"));
}

TEST(FsSyscalls, MkdirPermissionDenied) {
  World world;
  const int code = RunUser(world, [](SyscallApi& api) {
    return api.Mkdir("/etc/nope", 0755).error() == Errno::kAcces ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(FsSyscalls, RmdirSemantics) {
  World world;
  const int code = RunUser(world, [](SyscallApi& api) {
    if (!api.Mkdir("d", 0755).ok()) return 1;
    const Result<int> fd = api.Creat("d/f", 0644);
    if (!fd.ok()) return 2;
    if (api.Rmdir("d").error() != Errno::kExist) return 3;  // not empty
    if (!api.Unlink("d/f").ok()) return 4;
    if (!api.Rmdir("d").ok()) return 5;
    if (api.Rmdir("d").error() != Errno::kNoEnt) return 6;
    // rmdir on a file is ENOTDIR; unlink on a dir is EISDIR.
    const Result<int> f2 = api.Creat("plain", 0644);
    if (!f2.ok()) return 7;
    if (api.Rmdir("plain").error() != Errno::kNotDir) return 8;
    if (!api.Mkdir("d2", 0755).ok()) return 9;
    if (api.Unlink("d2").error() != Errno::kIsDir) return 10;
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(FsSyscalls, RmdirRefusesMountPoint) {
  World world;
  kernel::SpawnOptions opts;  // root
  auto err = std::make_shared<Errno>(Errno::kOk);
  const int32_t pid = world.host("brick").SpawnNative(
      "rm",
      [err](SyscallApi& api) {
        *err = api.Rmdir("/n/schooner").error();
        return 0;
      },
      opts);
  world.RunUntilExited("brick", pid);
  EXPECT_EQ(*err, Errno::kPerm);
}

TEST(FsSyscalls, RenameMovesAndReplaces) {
  World world;
  const int code = RunUser(world, [](SyscallApi& api) {
    const Result<int> a = api.Creat("a", 0644);
    if (!a.ok() || !api.Write(*a, "AAA").ok()) return 1;
    const Status ca = api.Close(*a);
    (void)ca;
    if (!api.Rename("a", "b").ok()) return 2;
    if (api.Stat("a").error() != Errno::kNoEnt) return 3;
    // Replace an existing target.
    const Result<int> c = api.Creat("c", 0644);
    if (!c.ok() || !api.Write(*c, "CCC").ok()) return 4;
    const Status cc = api.Close(*c);
    (void)cc;
    if (!api.Rename("b", "c").ok()) return 5;
    const Result<int> rd = api.Open("c", vm::abi::kORdOnly);
    if (!rd.ok()) return 6;
    const Result<std::string> data = api.ReadAll(*rd);
    if (!data.ok() || *data != "AAA") return 7;
    // Rename onto itself is a no-op.
    if (!api.Rename("c", "c").ok()) return 8;
    // Missing source.
    if (api.Rename("ghost", "x").error() != Errno::kNoEnt) return 9;
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(FsSyscalls, RenameDirectoryRules) {
  World world;
  const int code = RunUser(world, [](SyscallApi& api) {
    if (!api.Mkdir("src", 0755).ok()) return 1;
    if (!api.Mkdir("dst", 0755).ok()) return 2;
    // dir over empty dir: fine.
    if (!api.Rename("src", "dst").ok()) return 3;
    if (api.Stat("src").error() != Errno::kNoEnt) return 4;
    // file over dir / dir over file: refused.
    const Result<int> f = api.Creat("file", 0644);
    if (!f.ok()) return 5;
    if (api.Rename("file", "dst").error() != Errno::kIsDir) return 6;
    if (api.Rename("dst", "file").error() != Errno::kNotDir) return 7;
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(FsSyscalls, RenameAcrossMachinesIsExdev) {
  World world;
  const int code = RunUser(world, [](SyscallApi& api) {
    const Result<int> f = api.Creat("local", 0644);
    if (!f.ok()) return 1;
    return api.Rename("local", "/n/schooner/tmp/there").error() == Errno::kXDev ? 0 : 2;
  });
  EXPECT_EQ(code, 0);
}

TEST(Rdsp, ReadsStackPointer) {
  vm::VmContext ctx;
  ctx.LoadImage(vm::MustAssemble(R"(
start:  rdsp r1                 ; empty stack: sp == STACK_TOP
        push r1
        rdsp r2                 ; one push lower
        sys  0
)"));
  vm::Cpu cpu(vm::IsaLevel::kIsa10);  // base-ISA instruction
  ASSERT_EQ(cpu.Run(ctx, 100), vm::StopReason::kSyscall);
  EXPECT_EQ(ctx.cpu.regs[1], vm::kStackTop);
  EXPECT_EQ(ctx.cpu.regs[2], vm::kStackTop - 8);
}

TEST(Rdsp, CounterStackCellSurvivesArgvAndMigration) {
  // The regression that motivated rdsp: a counter exec'ed WITH arguments (argv on
  // the stack) must still keep a correct stack counter, including across a move.
  World world;
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.tty = world.console("brick");
  opts.cwd = "/u/user";
  const Result<int32_t> pid =
      world.host("brick").SpawnVm("/bin/counter", {"counter", "ignored", "args"}, opts);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(world.RunUntilBlocked("brick", *pid));
  EXPECT_NE(world.console("brick")->PlainOutput().find("r=1 s=1 k=1"), std::string::npos);

  const int32_t mig = world.StartTool(
      "schooner", "migrate", {"-p", std::to_string(*pid), "-f", "brick", "-t", "schooner"},
      kUserUid, world.console("schooner"));
  ASSERT_TRUE(world.RunUntilExited("schooner", mig, sim::Seconds(300)));
  const int32_t moved = world.FindPidByCommand("schooner", "migrated");
  ASSERT_GT(moved, 0);
  world.console("schooner")->Type("x\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("schooner")->PlainOutput().find("r=2 s=2 k=2") != std::string::npos;
  }));
}

}  // namespace
}  // namespace pmig
