// User-level tool internals: Realpath, dumpproc's path rewriting (symlink
// resolution, /dev/tty substitution, /n/<host> prepending), argument parsing,
// and migrate's error handling.

#include "src/core/tools.h"

#include <gtest/gtest.h>

#include "src/core/dump_format.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using core::DumpPaths;
using core::FilesEntry;
using core::FilesFile;
using kernel::SyscallApi;
using test::kUserUid;
using test::World;
using test::WorldOptions;

// Runs `fn` as a native process on `host`; returns its exit code.
int RunOn(World& world, std::string_view host, kernel::NativeTask::Entry fn) {
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.tty = world.console(host);
  opts.cwd = "/u/user";
  const int32_t pid = world.host(host).SpawnNative("fn", std::move(fn), opts);
  world.RunUntilExited(host, pid);
  return world.ExitInfoOf(host, pid).exit_code;
}

TEST(Realpath, PassesThroughPlainPaths) {
  World world;
  world.host("brick").vfs().SetupCreateFile("/a/b/f", "x");
  const int code = RunOn(world, "brick", [](SyscallApi& api) {
    const Result<std::string> r = core::Realpath(api, "/a/b/f");
    return (r.ok() && *r == "/a/b/f") ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(Realpath, ResolvesMiddleSymlink) {
  World world;
  world.host("brick").vfs().SetupCreateFile("/real/f", "x");
  world.host("brick").vfs().SetupSymlink("/alias", "/real");
  const int code = RunOn(world, "brick", [](SyscallApi& api) {
    const Result<std::string> r = core::Realpath(api, "/alias/f");
    return (r.ok() && *r == "/real/f") ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(Realpath, ResolvesChainsAndRelativeTargets) {
  World world;
  auto& v = world.host("brick").vfs();
  v.SetupCreateFile("/x/y/f", "x");
  v.SetupSymlink("/l1", "/l2");
  v.SetupSymlink("/l2", "x");    // relative: /x
  v.SetupSymlink("/x/yy", "y");  // relative within /x
  const int code = RunOn(world, "brick", [](SyscallApi& api) {
    const Result<std::string> r = core::Realpath(api, "/l1/yy/f");
    return (r.ok() && *r == "/x/y/f") ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(Realpath, RelativeInputUsesCwd) {
  World world;
  world.host("brick").vfs().SetupCreateFile("/u/user/doc.txt", "x");
  const int code = RunOn(world, "brick", [](SyscallApi& api) {
    const Result<std::string> r = core::Realpath(api, "doc.txt");
    return (r.ok() && *r == "/u/user/doc.txt") ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(Realpath, NonexistentLeafIsAllowed) {
  World world;
  const int code = RunOn(world, "brick", [](SyscallApi& api) {
    const Result<std::string> r = core::Realpath(api, "/u/user/not-yet");
    return (r.ok() && *r == "/u/user/not-yet") ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(Realpath, LoopFails) {
  World world;
  world.host("brick").vfs().SetupSymlink("/loop", "/loop");
  const int code = RunOn(world, "brick", [](SyscallApi& api) {
    return core::Realpath(api, "/loop/x").error() == Errno::kLoop ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
}

// --- dumpproc rewriting ---

// Stages a dumped counter whose output file is reached through a symlink, then
// checks the rewritten filesXXXXX.
TEST(DumpprocRewrite, ResolvesSymlinksAndPrependsHost) {
  World world;
  // /u/user is real on brick; add a symlinked data directory.
  auto& v = world.host("brick").vfs();
  v.SetupMkdirAll("/export/data")->uid = kUserUid;
  v.SetupSymlink("/u/user/data", "/export/data");

  // A counter run with cwd inside the symlinked directory.
  const int32_t pid = world.StartVm("brick", "/bin/counter", {}, "/u/user/data");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("hi\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  ASSERT_EQ(world.ExitInfoOf("brick", dp).exit_code, 0);

  const Result<FilesFile> files =
      FilesFile::Parse(world.FileContents("brick", DumpPaths::For(pid).files));
  ASSERT_TRUE(files.ok());
  // cwd: textual /u/user/data -> resolved /export/data -> prefixed /n/brick.
  EXPECT_EQ(files->cwd, "/n/brick/export/data");
  // The terminal became /dev/tty.
  EXPECT_EQ(files->entries[0].path, "/dev/tty");
  EXPECT_EQ(files->entries[1].path, "/dev/tty");
  // counter.out: symlink resolved + host prefix.
  EXPECT_EQ(files->entries[3].path, "/n/brick/export/data/counter.out");
}

TEST(DumpprocRewrite, AlreadyRemotePathsLeftAlone) {
  WorldOptions options;
  options.file_server_home = true;  // /u/user -> /n/schooner/u2/user on both hosts
  World world(options);
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  ASSERT_EQ(world.ExitInfoOf("brick", dp).exit_code, 0);

  const Result<FilesFile> files =
      FilesFile::Parse(world.FileContents("brick", DumpPaths::For(pid).files));
  ASSERT_TRUE(files.ok());
  // The home is already a /n/... name after symlink resolution: no double prefix.
  EXPECT_EQ(files->cwd, "/n/schooner/u2/user");
  EXPECT_EQ(files->entries[3].path, "/n/schooner/u2/user/counter.out");
}

TEST(Dumpproc, FailsForUnknownPid) {
  World world;
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", "999999"});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  EXPECT_NE(world.ExitInfoOf("brick", dp).exit_code, 0);
}

TEST(Dumpproc, NonOwnerCannotDump) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)},
                                     /*uid=*/222);
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  EXPECT_NE(world.ExitInfoOf("brick", dp).exit_code, 0);
  // The victim is untouched.
  kernel::Proc* p = world.host("brick").FindProc(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->Alive());
}

TEST(Dumpproc, SuperuserMayDumpAnyones) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)},
                                     /*uid=*/0);
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  EXPECT_EQ(world.ExitInfoOf("brick", dp).exit_code, 0);
}

// --- argument parsing ---

TEST(ToolArgs, UsageErrorsExitTwo) {
  World world;
  for (const auto& [program, args] :
       std::vector<std::pair<std::string, std::vector<std::string>>>{
           {"dumpproc", {}},
           {"dumpproc", {"-p"}},
           {"restart", {"-h", "brick"}},
           {"migrate", {"-f", "brick"}},
           {"undump", {"only", "two"}},
       }) {
    const int32_t pid = world.StartTool("brick", program, args);
    ASSERT_TRUE(world.RunUntilExited("brick", pid)) << program;
    EXPECT_EQ(world.ExitInfoOf("brick", pid).exit_code, 2) << program;
  }
}

TEST(ToolArgs, ComplaintsGoToStderr) {
  World world;
  const int32_t pid = world.StartTool("brick", "dumpproc", {});
  ASSERT_TRUE(world.RunUntilExited("brick", pid));
  EXPECT_NE(world.tty("brick", "ttyp0")->PlainOutput().find("usage: dumpproc"),
            std::string::npos);
}

TEST(Migrate, FailsCleanlyOnUnknownHost) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t mig = world.StartTool(
      "brick", "migrate", {"-p", std::to_string(pid), "-t", "nonesuch"});
  ASSERT_TRUE(world.RunUntilExited("brick", mig, sim::Seconds(120)));
  EXPECT_NE(world.ExitInfoOf("brick", mig).exit_code, 0);
}

TEST(Migrate, FailsCleanlyOnBadPid) {
  World world;
  const int32_t mig = world.StartTool("brick", "migrate", {"-p", "31337"});
  ASSERT_TRUE(world.RunUntilExited("brick", mig, sim::Seconds(120)));
  EXPECT_NE(world.ExitInfoOf("brick", mig).exit_code, 0);
}

}  // namespace
}  // namespace pmig
