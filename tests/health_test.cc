// The cluster health monitor: retained time series (downsampling ring), the
// online anomaly detector, SLO burn-rate alerting, and the paths that surface
// them — run-report lines, flight-recorder post-mortems, placement demotion,
// and the phealth shell built-in.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/apps/placement.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/health_monitor.h"
#include "src/sim/time_series.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using test::kUserUid;
using test::World;
using test::WorldOptions;

// --- TimeSeries --------------------------------------------------------------------

TEST(TimeSeries, RawRingKeepsEverythingUnderCapacity) {
  sim::TimeSeries ts(/*points_per_tier=*/8, /*tiers=*/2);
  for (int i = 0; i < 8; ++i) ts.Append(sim::Seconds(i), i);
  EXPECT_EQ(ts.size(), 8u);
  EXPECT_EQ(ts.total_appended(), 8);
  const auto points = ts.Points();
  ASSERT_EQ(points.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(points[static_cast<size_t>(i)].at, sim::Seconds(i));
    EXPECT_EQ(points[static_cast<size_t>(i)].value, i);
    EXPECT_EQ(points[static_cast<size_t>(i)].count, 1);
  }
  EXPECT_EQ(ts.Newest().value, 7);
}

TEST(TimeSeries, OverflowDownsamplesIntoCoarserTiers) {
  sim::TimeSeries ts(/*points_per_tier=*/4, /*tiers=*/3);
  for (int i = 0; i < 20; ++i) ts.Append(sim::Seconds(i), i);
  EXPECT_EQ(ts.total_appended(), 20);
  // Memory stays bounded by points_per_tier * tiers.
  EXPECT_LE(ts.size(), 12u);
  const auto points = ts.Points();
  // Counts of retained points account for every raw sample (nothing has been
  // evicted from the coarsest tier yet), timestamps never go backwards, and
  // merged points carry count-weighted means.
  int64_t total = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    total += points[i].count;
    if (i > 0) {
      EXPECT_GE(points[i].at, points[i - 1].at);
    }
  }
  EXPECT_EQ(total, 20);
  EXPECT_EQ(ts.Newest().value, 19);
  // The oldest retained point is a downsampled summary, not a raw sample.
  EXPECT_GT(points.front().count, 1);
}

TEST(TimeSeries, CoarsestTierEvicts) {
  sim::TimeSeries ts(/*points_per_tier=*/2, /*tiers=*/2);
  for (int i = 0; i < 64; ++i) ts.Append(sim::Seconds(i), 1.0);
  EXPECT_EQ(ts.total_appended(), 64);
  EXPECT_LE(ts.size(), 4u);
  int64_t represented = 0;
  for (const sim::SeriesPoint& p : ts.Points()) represented += p.count;
  EXPECT_LT(represented, 64);  // oldest history fell off the back
  EXPECT_GT(represented, 0);
}

TEST(TimeSeries, WindowStatsAggregateByCount) {
  sim::TimeSeries ts(/*points_per_tier=*/16, /*tiers=*/1);
  ts.Append(sim::Seconds(1), 10);
  ts.Append(sim::Seconds(2), 20);
  ts.Append(sim::Seconds(3), 60);
  const auto all = ts.Over(0);
  EXPECT_EQ(all.count, 3);
  EXPECT_DOUBLE_EQ(all.mean, 30.0);
  EXPECT_DOUBLE_EQ(all.min, 10.0);
  EXPECT_DOUBLE_EQ(all.max, 60.0);
  const auto recent = ts.Over(sim::Seconds(3));
  EXPECT_EQ(recent.count, 1);
  EXPECT_DOUBLE_EQ(recent.mean, 60.0);
}

// --- HealthMonitor core ------------------------------------------------------------

sim::Slo ErrorSlo() {
  sim::Slo slo;
  slo.name = "errs";
  slo.metric = "migrate.errors";
  slo.threshold = 0.5;
  slo.objective = 0.9;
  slo.fast_window = sim::Seconds(10);
  slo.fast_burn = 3.0;
  slo.slow_window = sim::Seconds(30);
  slo.slow_burn = 2.0;
  slo.min_events = 4;
  return slo;
}

TEST(HealthMonitor, DefaultConfigIsDisabledAndInert) {
  sim::VirtualClock clock;
  sim::HealthMonitor monitor(&clock, {}, {});
  EXPECT_FALSE(monitor.enabled());
  monitor.Observe("brick", "migrate.e2e_ns", 1e9);
  monitor.Tick();
  EXPECT_TRUE(monitor.Hosts().empty());
  EXPECT_TRUE(monitor.alerts().empty());
  EXPECT_TRUE(monitor.Budgets().empty());
  EXPECT_EQ(monitor.HealthScore("brick"), 0.0);
}

TEST(HealthMonitor, AnomalyFiresOnShiftAndResolvesOnRecovery) {
  sim::VirtualClock clock;
  sim::HealthOptions options;
  options.anomaly_detection = true;
  options.min_samples = 8;
  sim::HealthMonitor monitor(&clock, options, {});
  ASSERT_TRUE(monitor.enabled());

  // A steady baseline with mild jitter: no anomaly.
  for (int i = 0; i < 20; ++i) {
    clock.Advance(sim::Seconds(1));
    monitor.Observe("schooner", "migration.dump_ns", 100.0 + (i % 2));
  }
  EXPECT_FALSE(monitor.Anomalous("schooner", "migration.dump_ns"));
  EXPECT_EQ(monitor.HealthScore("schooner"), 0.0);

  // A sustained 10x shift: anomalous, alert raised, score counts it.
  for (int i = 0; i < 6; ++i) {
    clock.Advance(sim::Seconds(1));
    monitor.Observe("schooner", "migration.dump_ns", 1000.0);
  }
  EXPECT_TRUE(monitor.Anomalous("schooner", "migration.dump_ns"));
  EXPECT_GE(monitor.AnomalyZ("schooner", "migration.dump_ns"), 3.0);
  EXPECT_EQ(monitor.HealthScore("schooner"), 1.0);
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].rule, "anomaly:migration.dump_ns");
  EXPECT_EQ(monitor.alerts()[0].host, "schooner");
  EXPECT_FALSE(monitor.alerts()[0].resolved);
  EXPECT_EQ(monitor.ActiveAlerts(), 1);

  // The baseline froze while anomalous: it did not teach itself that 1000 is
  // normal, so recovery means returning to the old level.
  for (int i = 0; i < 30; ++i) {
    clock.Advance(sim::Seconds(1));
    monitor.Observe("schooner", "migration.dump_ns", 100.0);
  }
  EXPECT_FALSE(monitor.Anomalous("schooner", "migration.dump_ns"));
  EXPECT_TRUE(monitor.alerts()[0].resolved);
  EXPECT_GT(monitor.alerts()[0].resolved_at, monitor.alerts()[0].at);
  EXPECT_EQ(monitor.ActiveAlerts(), 0);
  EXPECT_EQ(monitor.HealthScore("schooner"), 0.0);
}

TEST(HealthMonitor, ZeroErrorBaselineRecoversAfterOneBadBurst) {
  sim::VirtualClock clock;
  sim::HealthOptions options;
  options.anomaly_detection = true;
  sim::HealthMonitor monitor(&clock, options, {});
  for (int i = 0; i < 10; ++i) {
    clock.Advance(sim::Seconds(1));
    monitor.ObserveOutcome("brick", "migrate.errors", false);
  }
  clock.Advance(sim::Seconds(1));
  monitor.ObserveOutcome("brick", "migrate.errors", true);
  EXPECT_TRUE(monitor.Anomalous("brick", "migrate.errors"));
  // A handful of clean outcomes pulls the EWMA back under the clear threshold
  // — one transient blip must not mark a host sick forever.
  for (int i = 0; i < 10; ++i) {
    clock.Advance(sim::Seconds(1));
    monitor.ObserveOutcome("brick", "migrate.errors", false);
  }
  EXPECT_FALSE(monitor.Anomalous("brick", "migrate.errors"));
}

TEST(HealthMonitor, SloBurnRateFiresAndResolves) {
  sim::VirtualClock clock;
  sim::HealthMonitor monitor(&clock, {}, {ErrorSlo()});
  ASSERT_TRUE(monitor.enabled());

  // Four good observations: budget healthy, nothing fires (min_events met).
  for (int i = 0; i < 4; ++i) {
    clock.Advance(sim::Millis(500));
    monitor.ObserveOutcome("schooner", "migrate.errors", false);
  }
  EXPECT_EQ(monitor.ActiveAlerts(), 0);

  // A burst of failures: bad fraction ~0.6 over the fast window = 6x burn of
  // the 10% budget, over the 3x fast threshold -> page.
  for (int i = 0; i < 6; ++i) {
    clock.Advance(sim::Millis(500));
    monitor.ObserveOutcome("schooner", "migrate.errors", true);
  }
  EXPECT_GE(monitor.ActiveAlerts(), 1);
  bool fast_fired = false;
  for (const sim::HealthAlert& a : monitor.alerts()) {
    if (a.rule == "errs:fast" && a.host == "schooner") fast_fired = true;
  }
  EXPECT_TRUE(fast_fired);
  EXPECT_GE(monitor.HealthScore("schooner"), 2.0);

  const auto budgets = monitor.Budgets();
  ASSERT_EQ(budgets.size(), 1u);
  EXPECT_EQ(budgets[0].host, "schooner");
  EXPECT_EQ(budgets[0].bad, 6);
  EXPECT_EQ(budgets[0].events, 10);
  EXPECT_TRUE(budgets[0].firing_fast);

  // The failures age out of the windows; Tick() alone (no new observations)
  // re-evaluates and resolves the alert.
  clock.Advance(sim::Seconds(40));
  monitor.Tick();
  EXPECT_EQ(monitor.ActiveAlerts(), 0);
  EXPECT_EQ(monitor.HealthScore("schooner"), 0.0);
}

TEST(HealthMonitor, SloTooFewEventsNeverFires) {
  sim::VirtualClock clock;
  sim::HealthMonitor monitor(&clock, {}, {ErrorSlo()});
  // Three catastrophic observations, but min_events is 4: no verdict yet.
  for (int i = 0; i < 3; ++i) {
    clock.Advance(sim::Millis(500));
    monitor.ObserveOutcome("schooner", "migrate.errors", true);
  }
  EXPECT_EQ(monitor.ActiveAlerts(), 0);
}

TEST(HealthMonitor, AlertEdgeDumpsFlightRecorderPostmortem) {
  sim::VirtualClock clock;
  sim::FlightRecorder recorder(&clock, 16);
  recorder.set_enabled(true);
  recorder.Note("schooner", 7, 0, "leg failed");
  sim::HealthMonitor monitor(&clock, {}, {ErrorSlo()});
  monitor.set_flight_recorder(&recorder);
  for (int i = 0; i < 4; ++i) {
    clock.Advance(sim::Millis(500));
    monitor.ObserveOutcome("schooner", "migrate.errors", true);
  }
  ASSERT_GE(monitor.ActiveAlerts(), 1);
  ASSERT_FALSE(recorder.postmortems().empty());
  const sim::FlightRecorder::Postmortem& pm = recorder.postmortems().front();
  EXPECT_EQ(pm.host, "schooner");
  EXPECT_NE(pm.reason.find("[alert=errs:fast host=schooner]"), std::string::npos);
  EXPECT_NE(pm.jsonl.find("leg failed"), std::string::npos);
}

TEST(HealthMonitor, SeriesRetainedPerHostAndMetric) {
  sim::VirtualClock clock;
  sim::HealthOptions options;
  options.anomaly_detection = true;
  sim::HealthMonitor monitor(&clock, options, {});
  clock.Advance(sim::Seconds(1));
  monitor.Observe("brick", "load.runnable", 2);
  monitor.Observe("schooner", "load.runnable", 5);
  monitor.Observe("brick", "migrate.e2e_ns", 1e9);
  EXPECT_EQ(monitor.Hosts(), (std::vector<std::string>{"brick", "schooner"}));
  EXPECT_EQ(monitor.SeriesNames("brick").size(), 2u);
  const sim::TimeSeries* series = monitor.Series("brick", "load.runnable");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->Newest().value, 2);
  EXPECT_EQ(monitor.Series("brador", "load.runnable"), nullptr);
}

// --- Cluster wiring ----------------------------------------------------------------

// A successful migrate on a monitor-armed cluster feeds the per-host series
// (dump/restart/e2e/error outcomes) and the run report carries slo lines.
TEST(HealthCluster, MigrateFeedsSeriesAndReportCarriesSloLines) {
  WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  options.slos = {ErrorSlo()};
  options.health.anomaly_detection = true;
  World world(options);
  ASSERT_TRUE(world.cluster().health_monitor().enabled());

  const int32_t pid = world.StartVm("schooner", "/bin/counter");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(world.RunUntilBlocked("schooner", pid));
  world.console("schooner")->Type("x\n");
  ASSERT_TRUE(world.RunUntilBlocked("schooner", pid));
  const int32_t mig = world.StartTool(
      "brick", "migrate", {"-p", std::to_string(pid), "-f", "schooner", "-t", "brador"},
      kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilExited("brick", mig));
  EXPECT_EQ(world.ExitInfoOf("brick", mig).exit_code, 0);

  const sim::HealthMonitor& monitor = world.cluster().health_monitor();
  // The dump happened on schooner, the restart (and the landing) on brador.
  ASSERT_NE(monitor.Series("schooner", "migration.dump_ns"), nullptr);
  EXPECT_GT(monitor.Series("schooner", "migration.dump_ns")->Newest().value, 0);
  ASSERT_NE(monitor.Series("schooner", "migration.dump_bytes"), nullptr);
  ASSERT_NE(monitor.Series("brador", "migration.restart_ns"), nullptr);
  ASSERT_NE(monitor.Series("brador", "migrate.e2e_ns"), nullptr);
  EXPECT_GT(monitor.Series("brador", "migrate.e2e_ns")->Newest().value, 0);
  // Every leg succeeded: error series exist and the SLO budget is clean.
  ASSERT_NE(monitor.Series("schooner", "migrate.errors"), nullptr);
  EXPECT_EQ(monitor.ActiveAlerts(), 0);

  std::ostringstream out;
  world.cluster().WriteReport(out);
  const std::string report = out.str();
  EXPECT_NE(report.find("\"type\":\"slo\""), std::string::npos);
  EXPECT_NE(report.find("\"name\":\"errs\""), std::string::npos);
  EXPECT_EQ(report.find("\"type\":\"alert\""), std::string::npos);  // nothing fired
}

// The sampler feeds load/segcache/fault-score series for every up host.
TEST(HealthCluster, SamplerFeedsPerHostSeries) {
  WorldOptions options;
  options.num_hosts = 2;
  options.metrics = true;
  options.sample_period = sim::Millis(50);
  options.health.anomaly_detection = true;
  World world(options);
  world.StartVm("brick", "/bin/hog", {"hog", "2000000"});
  world.cluster().RunFor(sim::Seconds(1));
  const sim::HealthMonitor& monitor = world.cluster().health_monitor();
  for (const char* host : {"brick", "schooner"}) {
    for (const char* metric : {"load.runnable", "segcache.bytes", "fault.score"}) {
      ASSERT_NE(monitor.Series(host, metric), nullptr) << host << "/" << metric;
      EXPECT_GT(monitor.Series(host, metric)->total_appended(), 1) << host << "/" << metric;
    }
  }
}

// An alert line shows up in the report when a rule fires, and it is marked
// resolved once the host recovers.
TEST(HealthCluster, ReportCarriesAlertLines) {
  WorldOptions options;
  options.num_hosts = 2;
  options.slos = {ErrorSlo()};
  World world(options);
  sim::HealthMonitor& monitor = world.cluster().health_monitor();
  for (int i = 0; i < 6; ++i) {
    world.cluster().RunFor(sim::Millis(100));
    monitor.ObserveOutcome("schooner", "migrate.errors", true);
  }
  ASSERT_GE(monitor.ActiveAlerts(), 1);
  std::ostringstream out;
  world.cluster().WriteReport(out);
  EXPECT_NE(out.str().find("\"type\":\"alert\""), std::string::npos);
  EXPECT_NE(out.str().find("\"rule\":\"errs:fast\""), std::string::npos);
}

// --- Placement demotion ------------------------------------------------------------

TEST(HealthPlacement, FaultAwarePoliciesDemoteUnhealthyHosts) {
  WorldOptions options;
  options.num_hosts = 3;  // brick, schooner, brador
  options.slos = {ErrorSlo()};
  World world(options);
  sim::HealthMonitor& monitor = world.cluster().health_monitor();
  net::Network& net = world.cluster().network();

  apps::PlacementQuery query;
  query.from_host = "brick";

  // All healthy: fault-aware picks schooner (first in network order, brick
  // excluded as the source).
  const apps::PlacementEngine fault_aware(&net, apps::PlacementPolicy::kFaultAware);
  EXPECT_EQ(fault_aware.PickTarget(query), "schooner");

  // Burn schooner's error budget: its health score crosses the default
  // threshold and fault-aware placement walks away from it — no migrate
  // against schooner ever failed; the *monitor* demoted it.
  for (int i = 0; i < 6; ++i) {
    world.cluster().RunFor(sim::Millis(100));
    monitor.ObserveOutcome("schooner", "migrate.errors", true);
  }
  ASSERT_GE(monitor.HealthScore("schooner"), 1.0);
  EXPECT_EQ(fault_aware.PickTarget(query), "brador");
  EXPECT_FALSE(fault_aware.Eligible(world.host("schooner")));
  EXPECT_TRUE(fault_aware.Eligible(world.host("brador")));

  // The scores are visible in the survey either way.
  const auto scores = fault_aware.Score(query);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_EQ(scores[0].host, "schooner");
  EXPECT_GE(scores[0].health_score, 1.0);
  EXPECT_TRUE(scores[0].health_excluded);
  EXPECT_FALSE(scores[1].health_excluded);

  // kLoadOnly ignores health entirely (legacy equivalence).
  const apps::PlacementEngine load_only(&net, apps::PlacementPolicy::kLoadOnly);
  EXPECT_EQ(load_only.PickTarget(query), "schooner");
  EXPECT_TRUE(load_only.Eligible(world.host("schooner")));

  // A raised threshold keeps a mildly-unhealthy host in the pool.
  query.health_threshold = 100.0;
  EXPECT_EQ(fault_aware.PickTarget(query), "brador");  // still loses the tie-break
  EXPECT_FALSE(fault_aware.Score(query)[0].health_excluded);
}

// --- phealth built-in --------------------------------------------------------------

TEST(HealthShell, PhealthReportsBudgetsAndAlerts) {
  WorldOptions options;
  options.num_hosts = 2;
  options.slos = {ErrorSlo()};
  World world(options);
  sim::HealthMonitor& monitor = world.cluster().health_monitor();
  for (int i = 0; i < 6; ++i) {
    world.cluster().RunFor(sim::Millis(100));
    monitor.ObserveOutcome("schooner", "migrate.errors", true);
  }
  const int32_t shell = world.StartTool("brick", "sh", {}, kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilBlocked("brick", shell));
  world.console("brick")->Type("phealth\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", shell));
  const std::string out = world.console("brick")->PlainOutput();
  EXPECT_NE(out.find("slo errs host=schooner"), std::string::npos);
  EXPECT_NE(out.find("FIRING-FAST"), std::string::npos);
  EXPECT_NE(out.find("alert [firing]"), std::string::npos);
}

TEST(HealthShell, PhealthSaysDisabledWhenUnarmed) {
  World world;
  const int32_t shell = world.StartTool("brick", "sh", {}, kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilBlocked("brick", shell));
  world.console("brick")->Type("phealth\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", shell));
  EXPECT_NE(world.console("brick")->PlainOutput().find("health monitor disabled"),
            std::string::npos);
}

// --- Flight recorder capacity (TestbedOptions passthrough) -------------------------

TEST(FlightRecorderCapacity, TestbedPassesCapacityThrough) {
  WorldOptions options;
  options.flight_recorder = true;
  options.flight_recorder_capacity = 4;
  World world(options);
  EXPECT_EQ(world.cluster().flight_recorder().capacity_per_host(), 4u);
}

TEST(FlightRecorderCapacity, RingEvictsOldestPastCapacity) {
  sim::VirtualClock clock;
  sim::FlightRecorder recorder(&clock, /*capacity_per_host=*/4);
  recorder.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    clock.Advance(sim::Millis(1));
    recorder.Note("brick", i, 0, "event " + std::to_string(i));
  }
  const auto& ring = recorder.ring("brick");
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.front().what, "event 6");  // 0..5 evicted
  EXPECT_EQ(ring.back().what, "event 9");
  // Rings are per host: another host's ring is untouched and capacity applies
  // independently.
  recorder.Note("schooner", 1, 0, "solo");
  EXPECT_EQ(recorder.ring("schooner").size(), 1u);
  EXPECT_EQ(recorder.ring("brick").size(), 4u);
  // A post-mortem snapshots exactly the retained window.
  recorder.Dump("brick", 0, "why");
  ASSERT_EQ(recorder.postmortems().size(), 1u);
  EXPECT_EQ(recorder.postmortems()[0].jsonl.find("event 5"), std::string::npos);
  EXPECT_NE(recorder.postmortems()[0].jsonl.find("event 6"), std::string::npos);
}

}  // namespace
}  // namespace pmig
