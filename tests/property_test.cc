// Property-based tests.
//
// The central invariant of process migration: for a well-behaved program, an
// execution interrupted at ANY point by dump+restart (same or different machine)
// is indistinguishable from an uninterrupted one — same terminal output, same file
// contents, same final state. We check it for interactive programs across every
// input split point, and for a batch program across randomised dump times.
//
// Also here: randomised path-resolution equivalence (physical walks match the
// lexical model when no symlinks are involved) and fd-table allocation invariants
// under random open/close/dup sequences.

#include <gtest/gtest.h>

#include <map>

#include "src/core/test_programs.h"
#include "src/sim/rng.h"
#include "src/vm/assembler.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using kernel::SyscallApi;
using test::kUserUid;
using test::World;

// A batch worker: appends "<i>\n" for i = 1..300 to worker.out, then exits.
constexpr std::string_view kWorkerSource = R"(
        .text
start:  movi r7, 300
        movi r0, wname
        movi r1, O_WRONLY+O_CREAT+O_APPEND
        movi r2, 420
        sys  SYS_open
        mov  r6, r0
wl:     addi r5, r5, 1
        mov  r0, r5
        call fnum
        movi r3, 10
        movi r4, nlbuf
        stb  r3, r4, 0
        mov  r0, r6
        movi r1, nlbuf
        movi r2, 1
        sys  SYS_write
        blt  r5, r7, wl
        movi r0, 0
        sys  SYS_exit
fnum:                           ; writes r0 in decimal to fd r6; clobbers r0-r4
        movi r3, numbuf+24
        movi r4, 10
fn1:    addi r3, r3, -1
        mod  r1, r0, r4
        addi r1, r1, 48
        stb  r1, r3, 0
        div  r0, r0, r4
        movi r1, 0
        bne  r0, r1, fn1
        movi r0, numbuf+24
        sub  r2, r0, r3
        mov  r1, r3
        mov  r0, r6
        sys  SYS_write
        ret
        .data
wname:  .asciiz "worker.out"
numbuf: .space 24
nlbuf:  .space 2
)";

// Expected worker.out after a full run.
std::string ExpectedWorkerOutput() {
  std::string out;
  for (int i = 1; i <= 300; ++i) out += std::to_string(i) + "\n";
  return out;
}

// --- Interactive equivalence across all split points ---

const std::vector<std::string> kScript = {"alpha\n", "bravo\n", "charlie\n", "delta\n"};

struct InteractiveRun {
  std::string tty_output;   // concatenated across hosts
  std::string file_output;  // counter.out contents
};

InteractiveRun RunUninterrupted() {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  EXPECT_TRUE(world.RunUntilBlocked("brick", pid));
  for (const std::string& line : kScript) {
    world.console("brick")->Type(line);
    EXPECT_TRUE(world.RunUntilBlocked("brick", pid));
  }
  return {world.console("brick")->PlainOutput(),
          world.FileContents("brick", "/u/user/counter.out")};
}

InteractiveRun RunWithMigrationAfter(size_t split) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  EXPECT_TRUE(world.RunUntilBlocked("brick", pid));
  for (size_t i = 0; i < split; ++i) {
    world.console("brick")->Type(kScript[i]);
    EXPECT_TRUE(world.RunUntilBlocked("brick", pid));
  }
  // migrate typed on schooner; per Section 4.1 the process is "restarted on the
  // terminal (or window) on which the command was typed" — so the rest of the
  // session continues on that terminal.
  kernel::Tty* session = world.tty("schooner", "ttyp0");
  const int32_t mig = world.StartTool(
      "schooner", "migrate",
      {"-p", std::to_string(pid), "-f", "brick", "-t", "schooner"}, kUserUid, session);
  EXPECT_TRUE(world.RunUntilExited("schooner", mig, sim::Seconds(300)));
  EXPECT_EQ(world.ExitInfoOf("schooner", mig).exit_code, 0);
  const int32_t new_pid = world.FindPidByCommand("schooner", "migrated");
  EXPECT_GT(new_pid, 0);
  EXPECT_TRUE(world.RunUntilBlocked("schooner", new_pid));
  for (size_t i = split; i < kScript.size(); ++i) {
    session->Type(kScript[i]);
    EXPECT_TRUE(world.RunUntilBlocked("schooner", new_pid));
  }
  return {world.console("brick")->PlainOutput() + session->PlainOutput(),
          world.FileContents("brick", "/u/user/counter.out")};
}

class SplitPointTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SplitPointTest, MigratedRunIndistinguishableFromStraightRun) {
  const InteractiveRun straight = RunUninterrupted();
  const InteractiveRun migrated = RunWithMigrationAfter(GetParam());
  EXPECT_EQ(straight.tty_output, migrated.tty_output);
  EXPECT_EQ(straight.file_output, migrated.file_output);
  EXPECT_EQ(straight.file_output, "alpha\nbravo\ncharlie\ndelta\n");
}

INSTANTIATE_TEST_SUITE_P(EverySplit, SplitPointTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

// --- Batch equivalence across random dump times ---

class RandomDumpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDumpTest, WorkerOutputIdenticalAfterMidComputeMigration) {
  sim::Rng rng(static_cast<uint64_t>(GetParam()));
  World world;
  core::InstallProgram(world.host("brick"), "/bin/worker", kWorkerSource);
  const int32_t pid = world.StartVm("brick", "/bin/worker", {}, "/u/user");
  ASSERT_GT(pid, 0);

  // Let it run a random amount (the worker needs ~several hundred ms total),
  // then dump it mid-compute.
  world.cluster().RunFor(sim::Millis(rng.Range(5, 400)));
  kernel::Proc* p = world.host("brick").FindProc(pid);
  if (p != nullptr && p->Alive()) {
    const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
    ASSERT_TRUE(world.RunUntilExited("brick", dp));
    if (world.ExitInfoOf("brick", dp).exit_code == 0) {
      const int32_t rs = world.StartTool("schooner", "restart",
                                         {"-p", std::to_string(pid), "-h", "brick"},
                                         kUserUid, world.console("schooner"));
      ASSERT_TRUE(world.RunUntilExited("schooner", rs, sim::Seconds(600)));
    }
    // else: the worker finished before SIGDUMP landed; fine.
  }
  ASSERT_TRUE(world.cluster().RunUntilIdle(sim::Seconds(600)));
  EXPECT_EQ(world.FileContents("brick", "/u/user/worker.out"), ExpectedWorkerOutput());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDumpTest, ::testing::Range(1, 13));

// --- Randomised path-resolution equivalence ---

TEST(PathProperty, PhysicalWalkMatchesLexicalModelWithoutSymlinks) {
  sim::Rng rng(20260704);
  sim::CostModel costs;
  for (int round = 0; round < 20; ++round) {
    vfs::Filesystem fs("prop");
    vfs::Vfs v(&fs, &costs);
    // Random directory tree.
    std::vector<std::string> dirs = {"/"};
    std::map<std::string, bool> is_file;
    for (int i = 0; i < 30; ++i) {
      const std::string parent = rng.Pick(dirs);
      const std::string name = rng.Ident(3);
      const std::string path = (parent == "/" ? "" : parent) + "/" + name;
      if (is_file.count(path) != 0 ||
          std::find(dirs.begin(), dirs.end(), path) != dirs.end()) {
        continue;
      }
      if (rng.Chance(0.5)) {
        v.SetupMkdirAll(path);
        dirs.push_back(path);
      } else {
        v.SetupCreateFile(path, "x");
        is_file[path] = true;
      }
    }
    // Random path strings with ./.. noise, resolved from random cwds.
    for (int q = 0; q < 50; ++q) {
      const std::string cwd = rng.Pick(dirs);
      std::string rel;
      for (int c = 0; c < static_cast<int>(rng.Below(5)) + 1; ++c) {
        const double dice = rng.Double();
        if (dice < 0.2) {
          rel += "../";
        } else if (dice < 0.4) {
          rel += "./";
        } else {
          rel += rng.Ident(3) + "/";
        }
      }
      rel.pop_back();  // drop trailing slash
      const std::string combined = vfs::Combine(cwd, rel);

      auto cwd_state = v.Resolve(v.RootState(), cwd, vfs::Follow::kAll, nullptr);
      ASSERT_TRUE(cwd_state.ok());
      const auto via_rel = v.Resolve(cwd_state->state, rel, vfs::Follow::kAll, nullptr);
      const auto via_abs = v.Resolve(v.RootState(), combined, vfs::Follow::kAll, nullptr);
      // Whenever the physical walk succeeds, the lexically combined absolute
      // name names the same object. (This is exactly why the paper's textual
      // cwd/file-name tracking is sound for names the process successfully
      // used. The converse does not hold: "a/.." normalises lexically even
      // when "a" does not exist — and symlinks would break it further.)
      if (via_rel.ok()) {
        ASSERT_TRUE(via_abs.ok()) << cwd << " + " << rel;
        EXPECT_EQ(via_rel->inode, via_abs->inode) << cwd << " + " << rel;
      }
    }
  }
}

// --- fd-table invariants under random operations ---

TEST(FdProperty, LowestFreeAllocationUnderRandomOpenCloseDup) {
  World world;
  kernel::Kernel& k = world.host("brick");
  auto failures = std::make_shared<int>(0);
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.cwd = "/tmp";
  const int32_t pid = k.SpawnNative(
      "fdfuzz",
      [failures](SyscallApi& api) {
        sim::Rng rng(777);
        std::map<int, bool> open_fds;  // model
        for (int step = 0; step < 300; ++step) {
          const double dice = rng.Double();
          if (dice < 0.5) {
            const Result<int> fd =
                api.Creat("f" + std::to_string(rng.Below(10)), 0644);
            if (static_cast<int>(open_fds.size()) >= kernel::kNoFile) {
              if (fd.error() != Errno::kMFile) ++*failures;
              continue;
            }
            if (!fd.ok()) {
              ++*failures;
              continue;
            }
            // Lowest-free invariant.
            for (int i = 0; i < *fd; ++i) {
              if (open_fds.count(i) == 0) ++*failures;
            }
            if (open_fds.count(*fd) != 0) ++*failures;
            open_fds[*fd] = true;
          } else if (dice < 0.8) {
            if (open_fds.empty()) continue;
            auto it = open_fds.begin();
            std::advance(it, static_cast<long>(rng.Below(open_fds.size())));
            if (!api.Close(it->first).ok()) ++*failures;
            open_fds.erase(it);
          } else {
            if (open_fds.empty()) continue;
            auto it = open_fds.begin();
            std::advance(it, static_cast<long>(rng.Below(open_fds.size())));
            const Result<int> dup = api.Dup(it->first);
            if (static_cast<int>(open_fds.size()) >= kernel::kNoFile) {
              if (dup.error() != Errno::kMFile) ++*failures;
              continue;
            }
            if (!dup.ok() || open_fds.count(*dup) != 0) {
              ++*failures;
              continue;
            }
            open_fds[*dup] = true;
          }
        }
        return 0;
      },
      opts);
  world.RunUntilExited("brick", pid, sim::Seconds(600));
  EXPECT_EQ(*failures, 0);
}

// --- Migration idempotence: migrating twice is as good as once ---

TEST(MigrationProperty, DoubleMigrationStillEquivalent) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("one\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  // brick -> schooner.
  int32_t mig = world.StartTool("schooner", "migrate",
                                {"-p", std::to_string(pid), "-f", "brick", "-t", "schooner"},
                                kUserUid, world.tty("schooner", "ttyp0"));
  ASSERT_TRUE(world.RunUntilExited("schooner", mig, sim::Seconds(300)));
  int32_t cur = world.FindPidByCommand("schooner", "migrated");
  ASSERT_GT(cur, 0);
  ASSERT_TRUE(world.RunUntilBlocked("schooner", cur));
  world.tty("schooner", "ttyp0")->Type("two\n");
  ASSERT_TRUE(world.RunUntilBlocked("schooner", cur));

  // schooner -> brick, back home.
  mig = world.StartTool("brick", "migrate",
                        {"-p", std::to_string(cur), "-f", "schooner", "-t", "brick"},
                        kUserUid, world.tty("brick", "ttyp0"));
  ASSERT_TRUE(world.RunUntilExited("brick", mig, sim::Seconds(300)));
  cur = world.FindPidByCommand("brick", "migrated");
  ASSERT_GT(cur, 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", cur));
  world.tty("brick", "ttyp0")->Type("three\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.tty("brick", "ttyp0")->PlainOutput().find("r=4 s=4 k=4") !=
           std::string::npos;
  }));
  EXPECT_EQ(world.FileContents("brick", "/u/user/counter.out"), "one\ntwo\nthree\n");
}

}  // namespace
}  // namespace pmig
