// Test alias for the shared cluster fixture.

#ifndef PMIG_TESTS_TEST_UTIL_H_
#define PMIG_TESTS_TEST_UTIL_H_

#include "src/cluster/testbed.h"

namespace pmig::test {

using World = testbed::Testbed;
using WorldOptions = testbed::TestbedOptions;
using testbed::kUserUid;

}  // namespace pmig::test

#endif  // PMIG_TESTS_TEST_UTIL_H_
