// Section 7: the limitations, reproduced as behaviour.
//
//   * sockets are not migrated (they become /dev/null);
//   * processes waiting for children must not be migrated;
//   * heterogeneity only works toward a superset ISA (Sun-2 -> Sun-3, not back);
//   * processes that "know things about their environment" (pid, hostname) break —
//     unless the Section 7 identity-virtualisation proposal is enabled.

#include <gtest/gtest.h>

#include "src/core/dump_format.h"
#include "src/vm/assembler.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using test::kUserUid;
using test::World;
using test::WorldOptions;

// Migrates `pid` from brick to schooner with migrate typed on schooner; returns
// the new pid on schooner (or -1).
int32_t MigrateToSchooner(World& world, int32_t pid) {
  const int32_t mig = world.StartTool(
      "schooner", "migrate",
      {"-p", std::to_string(pid), "-f", "brick", "-t", "schooner"}, kUserUid,
      world.console("schooner"));
  if (!world.RunUntilExited("schooner", mig, sim::Seconds(300))) return -1;
  if (world.ExitInfoOf("schooner", mig).exit_code != 0) return -1;
  return world.FindPidByCommand("schooner", "migrated");
}

TEST(Limitations, SocketsBecomeNullAndProcessKeepsRunning) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/socketer");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t new_pid = MigrateToSchooner(world, pid);
  ASSERT_GT(new_pid, 0);

  kernel::Proc* p = world.host("schooner").FindProc(new_pid);
  ASSERT_NE(p, nullptr);
  // fds 3/4 were the socket pair; now both are the null device.
  for (int fd : {3, 4}) {
    const kernel::OpenFilePtr& f = p->fds[static_cast<size_t>(fd)];
    ASSERT_NE(f, nullptr) << fd;
    ASSERT_EQ(f->kind, kernel::FileKind::kInode) << fd;
    EXPECT_EQ(std::string(f->inode->device->DeviceName()), "null") << fd;
  }
  // "the process migration mechanism is still useful": it keeps running — its
  // socket writes just vanish.
  world.console("schooner")->Type("more\n");
  ASSERT_TRUE(world.RunUntilBlocked("schooner", new_pid));
}

TEST(Limitations, ParentWaitingForChildrenBreaks) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/forkwait");
  kernel::Kernel& brick = world.host("brick");
  // Wait until the parent is blocked in wait() (child blocked in read()).
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    int blocked = 0;
    for (kernel::Proc* p : brick.ListProcs()) {
      if (p->kind == kernel::ProcKind::kVm && p->state == kernel::ProcState::kBlocked) {
        ++blocked;
      }
    }
    return blocked >= 2;
  }));

  const int32_t new_pid = MigrateToSchooner(world, pid);
  ASSERT_GT(new_pid, 0);
  // On schooner the migrated parent has no children: its wait() fails and the
  // program exits with its error code (10).
  ASSERT_TRUE(world.RunUntilExited("schooner", new_pid, sim::Seconds(120)));
  EXPECT_EQ(world.ExitInfoOf("schooner", new_pid).exit_code, 10);
}

TEST(Limitations, MigrationUphillSun2ToSun3Works) {
  WorldOptions options;
  options.isa = {vm::IsaLevel::kIsa10, vm::IsaLevel::kIsa20};  // brick=Sun-2
  World world(options);
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("a\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t new_pid = MigrateToSchooner(world, pid);
  ASSERT_GT(new_pid, 0);
  world.console("schooner")->Type("b\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("schooner")->PlainOutput().find("r=3 s=3 k=3") != std::string::npos;
  }));
}

TEST(Limitations, MigrationDownhillSun3ToSun2Refused) {
  WorldOptions options;
  options.isa = {vm::IsaLevel::kIsa20, vm::IsaLevel::kIsa10};  // schooner=Sun-2
  World world(options);
  const int32_t pid = world.StartVm("brick", "/bin/isa20");  // uses lmul
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  // migrate's restart phase fails: execve refuses the 68020 binary on the 68010.
  const int32_t mig = world.StartTool(
      "schooner", "migrate",
      {"-p", std::to_string(pid), "-f", "brick", "-t", "schooner"}, kUserUid,
      world.console("schooner"));
  ASSERT_TRUE(world.RunUntilExited("schooner", mig, sim::Seconds(300)));
  EXPECT_NE(world.ExitInfoOf("schooner", mig).exit_code, 0);
  EXPECT_EQ(world.FindPidByCommand("schooner", "migrated"), -1);
}

TEST(Limitations, Isa20ProgramOnSun2DiesWithSigill) {
  // The "crash" variant: a program that *already decided* to use 68020
  // instructions executes them on a 68010 and dies.
  WorldOptions options;
  options.isa = {vm::IsaLevel::kIsa10};
  World world(options);
  // Force the image into the machine regardless of the exec check by patching the
  // header's machtype (models a program that *chooses* fancy instructions at run
  // time based on its original host).
  auto img = vm::MustAssemble(std::string(core::Isa20ProgramSource()));
  img.header.machtype = 10;  // lies about its requirements
  std::vector<uint8_t> bytes = img.Serialize();
  world.host("brick").vfs().SetupCreateFile(
      "/bin/liar", std::string(bytes.begin(), bytes.end()), 0, 0755);
  const int32_t pid = world.StartVm("brick", "/bin/liar");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(world.RunUntilExited("brick", pid));
  const kernel::ExitInfo info = world.ExitInfoOf("brick", pid);
  EXPECT_EQ(info.killed_by_signal, vm::abi::kSigIll);
  EXPECT_TRUE(info.core_dumped);
}

TEST(Limitations, PidAndHostnameChangeAfterMigration) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/identity");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  EXPECT_NE(world.console("brick")->PlainOutput().find(std::to_string(pid) + ":brick"),
            std::string::npos);

  const int32_t new_pid = MigrateToSchooner(world, pid);
  ASSERT_GT(new_pid, 0);
  world.console("schooner")->Type("\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("schooner")->PlainOutput().find(std::to_string(new_pid) +
                                                         ":schooner") != std::string::npos;
  }));
}

TEST(Limitations, VirtualizedIdentityReportsOldValues) {
  // The Section 7 proposal: getpid()/gethostname() keep reporting the old values;
  // getpid_real()/gethostname_real() tell the truth.
  WorldOptions options;
  options.virtualize_identity = true;
  World world(options);
  const int32_t pid = world.StartVm("brick", "/bin/identity");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  const int32_t new_pid = MigrateToSchooner(world, pid);
  ASSERT_GT(new_pid, 0);
  world.console("schooner")->Type("\n");
  // The program still believes it is <old pid> on brick.
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("schooner")->PlainOutput().find(std::to_string(pid) + ":brick") !=
           std::string::npos;
  }));
  // The real syscalls see through it.
  kernel::Proc* p = world.host("schooner").FindProc(new_pid);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->migrated);
  kernel::SyscallApi* api = world.host("schooner").ApiFor(new_pid);
  ASSERT_NE(api, nullptr);
  EXPECT_EQ(api->GetPid(), pid);  // virtualised view
}

TEST(Limitations, TemporaryFileProblem) {
  // A process that re-derives a temp-file name from getpid() each time loses the
  // file after migration (its pid changed) — unless identity is virtualised.
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  // Simulate the program's temp file keyed by pid.
  world.host("brick").vfs().SetupCreateFile("/tmp/app." + std::to_string(pid), "state",
                                            kUserUid, 0600);
  const int32_t new_pid = MigrateToSchooner(world, pid);
  ASSERT_GT(new_pid, 0);
  // The name the program would now derive does not exist anywhere.
  EXPECT_FALSE(world.FileExists("schooner", "/tmp/app." + std::to_string(new_pid)));
  EXPECT_FALSE(world.FileExists("brick", "/tmp/app." + std::to_string(new_pid)));
}

}  // namespace
}  // namespace pmig
