// Remote execution: the rsh facility and the Section 6.4 migration daemon.

#include <gtest/gtest.h>

#include "src/net/migration_daemon.h"
#include "src/net/rsh.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using kernel::SyscallApi;
using test::kUserUid;
using test::World;
using test::WorldOptions;

// Runs `fn` on brick's console as the test user; returns exit code.
int RunOnBrick(World& world, kernel::NativeTask::Entry fn) {
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.tty = world.console("brick");
  opts.cwd = "/u/user";
  const int32_t pid = world.host("brick").SpawnNative("fn", std::move(fn), opts);
  world.RunUntilExited("brick", pid, sim::Seconds(300));
  return world.ExitInfoOf("brick", pid).exit_code;
}

TEST(Rsh, RunsCommandRemotelyAndForwardsOutput) {
  World world;
  net::Network* net = &world.cluster().network();
  const int code = RunOnBrick(world, [net](SyscallApi& api) {
    // `rsh schooner dumpproc` with no args: prints usage on (remote) stderr,
    // exits 2; the output must arrive on our stdout.
    const Result<int> rc = net::Rsh(api, *net, "schooner", "dumpproc", {});
    return rc.ok() ? *rc : 127;
  });
  EXPECT_EQ(code, 2);
  EXPECT_NE(world.console("brick")->PlainOutput().find("usage: dumpproc"),
            std::string::npos);
}

TEST(Rsh, UnknownHostIsUnreachable) {
  World world;
  net::Network* net = &world.cluster().network();
  const int code = RunOnBrick(world, [net](SyscallApi& api) {
    return net::Rsh(api, *net, "atlantis", "dumpproc", {}).error() == Errno::kHostUnreach
               ? 0
               : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(Rsh, UnknownProgramIsNoEnt) {
  World world;
  net::Network* net = &world.cluster().network();
  const int code = RunOnBrick(world, [net](SyscallApi& api) {
    return net::Rsh(api, *net, "schooner", "no-such-tool", {}).error() == Errno::kNoEnt ? 0
                                                                                        : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(Rsh, ConnectionSetupDominatesElapsedTime) {
  World world;
  net::Network* net = &world.cluster().network();
  const sim::Nanos t0 = world.cluster().clock().now();
  RunOnBrick(world, [net](SyscallApi& api) {
    const Result<int> rc = net::Rsh(api, *net, "schooner", "dumpproc", {});
    return rc.ok() ? *rc : 127;
  });
  const sim::Nanos elapsed = world.cluster().clock().now() - t0;
  EXPECT_GE(elapsed, world.cluster().costs().rsh_setup);
}

TEST(Rsh, RemoteCommandHasNoControllingTty) {
  // The root of the visual-program limitation: under rsh there is no terminal.
  World world;
  net::Network* net = &world.cluster().network();
  auto remote_has_tty = std::make_shared<bool>(true);
  // Run a probe remotely via a registered program.
  world.cluster().RegisterProgram(
      "ttyprobe", [remote_has_tty](SyscallApi& api, const std::vector<std::string>&) {
        *remote_has_tty = api.proc().controlling_tty != nullptr;
        return api.Open("/dev/tty", vm::abi::kORdWr).ok() ? 10 : 20;
      });
  const int code = RunOnBrick(world, [net](SyscallApi& api) {
    const Result<int> rc = net::Rsh(api, *net, "schooner", "ttyprobe", {});
    return rc.ok() ? *rc : 127;
  });
  EXPECT_EQ(code, 20);  // /dev/tty open failed remotely
  EXPECT_FALSE(*remote_has_tty);
}

TEST(Rsh, EditorMigratedOverRshLosesRawMode) {
  // Section 4.1: "certain terminal modes can not be preserved when moving a
  // process to a remote host ... making this command unsuitable for the migration
  // of visually oriented programs."
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/editor");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    const kernel::Proc* p = world.host("brick").FindProc(pid);
    return p != nullptr && p->state == kernel::ProcState::kBlocked;
  }));
  ASSERT_TRUE(world.console("brick")->raw());

  // migrate typed on BRICK with destination schooner: restart runs under rsh.
  const int32_t mig = world.StartTool(
      "brick", "migrate", {"-p", std::to_string(pid), "-f", "brick", "-t", "schooner"},
      kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilExited("brick", mig, sim::Seconds(300)));
  EXPECT_EQ(world.ExitInfoOf("brick", mig).exit_code, 0);

  // The editor survived — but schooner's console was never switched to raw mode,
  // and the editor's terminal went to /dev/null: the program is "useless".
  const int32_t new_pid = world.FindPidByCommand("schooner", "migrated");
  ASSERT_GT(new_pid, 0);
  EXPECT_FALSE(world.console("schooner")->raw());
  kernel::Proc* p = world.host("schooner").FindProc(new_pid);
  ASSERT_NE(p, nullptr);
  ASSERT_NE(p->fds[0], nullptr);
  EXPECT_EQ(std::string(p->fds[0]->inode->device->DeviceName()), "null");
}

// --- The migration daemon (Section 6.4) ---

TEST(Daemon, ExecutesRemoteCommand) {
  WorldOptions options;
  options.daemons = true;
  World world(options);
  net::Network* net = &world.cluster().network();
  const int code = RunOnBrick(world, [net](SyscallApi& api) {
    const Result<int> rc = net::DaemonExec(api, *net, "schooner", "dumpproc", {});
    return rc.ok() ? *rc : 127;
  });
  EXPECT_EQ(code, 2);  // usage error from the remote dumpproc
}

TEST(Daemon, MuchFasterThanRsh) {
  WorldOptions options;
  options.daemons = true;
  World world(options);
  net::Network* net = &world.cluster().network();

  const sim::Nanos t0 = world.cluster().clock().now();
  RunOnBrick(world, [net](SyscallApi& api) {
    const Result<int> rc = net::DaemonExec(api, *net, "schooner", "dumpproc", {});
    return rc.ok() ? *rc : 127;
  });
  const sim::Nanos daemon_time = world.cluster().clock().now() - t0;

  const sim::Nanos t1 = world.cluster().clock().now();
  RunOnBrick(world, [net](SyscallApi& api) {
    const Result<int> rc = net::Rsh(api, *net, "schooner", "dumpproc", {});
    return rc.ok() ? *rc : 127;
  });
  const sim::Nanos rsh_time = world.cluster().clock().now() - t1;
  EXPECT_LT(daemon_time * 3, rsh_time);  // the whole point of Section 6.4
}

TEST(Daemon, MissingDaemonIsUnreachable) {
  World world;  // daemons not started
  net::Network* net = &world.cluster().network();
  const int code = RunOnBrick(world, [net](SyscallApi& api) {
    return net::DaemonExec(api, *net, "schooner", "dumpproc", {}).error() ==
                   Errno::kHostUnreach
               ? 0
               : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(Daemon, RunsRequestUnderRequesterCredentials) {
  WorldOptions options;
  options.daemons = true;
  World world(options);
  net::Network* net = &world.cluster().network();
  auto seen_uid = std::make_shared<int32_t>(-1);
  world.cluster().RegisterProgram(
      "whoami", [seen_uid](SyscallApi& api, const std::vector<std::string>&) {
        *seen_uid = api.GetUid();
        return 0;
      });
  RunOnBrick(world, [net](SyscallApi& api) {
    const Result<int> rc = net::DaemonExec(api, *net, "schooner", "whoami", {});
    return rc.ok() ? *rc : 127;
  });
  EXPECT_EQ(*seen_uid, kUserUid);
}

TEST(Daemon, ServesMigrateEndToEnd) {
  WorldOptions options;
  options.daemons = true;
  World world(options);
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("d1\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  const int32_t mig = world.StartTool(
      "schooner", "migrate",
      {"-p", std::to_string(pid), "-f", "brick", "-t", "schooner", "--daemon"}, kUserUid,
      world.console("schooner"));
  ASSERT_TRUE(world.RunUntilExited("schooner", mig, sim::Seconds(120)));
  EXPECT_EQ(world.ExitInfoOf("schooner", mig).exit_code, 0);
  const int32_t new_pid = world.FindPidByCommand("schooner", "migrated");
  ASSERT_GT(new_pid, 0);
  world.console("schooner")->Type("d2\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("schooner")->PlainOutput().find("r=3 s=3 k=3") != std::string::npos;
  }));
}

}  // namespace
}  // namespace pmig
