// The standard VM programs, run standalone (no migration): they must behave as
// their sources claim, since every migration test builds on them.

#include <gtest/gtest.h>

#include "src/core/test_programs.h"
#include "src/vm/assembler.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using test::World;

TEST(Programs, CounterPrintsAndAppends) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  EXPECT_NE(world.console("brick")->PlainOutput().find("r=1 s=1 k=1\n> "),
            std::string::npos);
  world.console("brick")->Type("first\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("second\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  EXPECT_NE(world.console("brick")->PlainOutput().find("r=3 s=3 k=3"), std::string::npos);
  EXPECT_EQ(world.FileContents("brick", "/u/user/counter.out"), "first\nsecond\n");
}

TEST(Programs, CounterExitsOnEof) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  // Raw mode delivers single chars; but EOF here: simulate by killing stdin —
  // easiest honest EOF: the /dev/null-stdio variant.
  kernel::Kernel& k = world.host("brick");
  kernel::SpawnOptions opts;
  opts.creds = {test::kUserUid, 10, test::kUserUid, 10};
  opts.cwd = "/u/user";  // no tty: stdio slots empty -> read fails -> exit path
  const Result<int32_t> quiet = k.SpawnVm("/bin/counter", {}, opts);
  ASSERT_TRUE(quiet.ok());
  ASSERT_TRUE(world.RunUntilExited("brick", *quiet, sim::Seconds(30)));
  EXPECT_EQ(world.ExitInfoOf("brick", *quiet).exit_code, 0);
}

TEST(Programs, HogRunsRequestedIterationsAndExits) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/hog", {"hog", "1000"});
  ASSERT_TRUE(world.RunUntilExited("brick", pid, sim::Seconds(10)));
  EXPECT_EQ(world.ExitInfoOf("brick", pid).exit_code, 0);
}

TEST(Programs, HogDefaultIterationsWithoutArgs) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/hog");
  world.cluster().RunFor(sim::Millis(100));
  kernel::Proc* p = world.host("brick").FindProc(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->Alive());  // 200000 iterations: still going after 100ms
  ASSERT_TRUE(world.RunUntilExited("brick", pid, sim::Seconds(10)));
}

TEST(Programs, EditorSetsRawModeAndEchoesBrackets) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/editor");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    const kernel::Proc* p = world.host("brick").FindProc(pid);
    return p != nullptr && p->state == kernel::ProcState::kBlocked;
  }));
  EXPECT_TRUE(world.console("brick")->raw());
  world.console("brick")->Type("a");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("brick")->PlainOutput().find("[a]") != std::string::npos;
  }));
  world.console("brick")->Type("q");  // quit
  ASSERT_TRUE(world.RunUntilExited("brick", pid, sim::Seconds(10)));
  EXPECT_EQ(world.ExitInfoOf("brick", pid).exit_code, 0);
}

TEST(Programs, DeepstackComputesTriangularSum) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/deepstack");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("\n");
  ASSERT_TRUE(world.RunUntilExited("brick", pid, sim::Seconds(10)));
  EXPECT_NE(world.console("brick")->PlainOutput().find("sum=820"), std::string::npos);
}

TEST(Programs, IdentityPrintsPidAndHost) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/identity");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  EXPECT_NE(world.console("brick")->PlainOutput().find(std::to_string(pid) + ":brick\n"),
            std::string::npos);
}

TEST(Programs, AllStandardProgramsAssemble) {
  const std::vector<std::string_view> sources = {
      core::CounterProgramSource(),  core::CpuHogProgramSource(),
      core::EditorProgramSource(),   core::SocketProgramSource(),
      core::ForkWaitProgramSource(), core::Isa20ProgramSource(),
      core::IdentityProgramSource(), core::HandlerProgramSource(),
      core::DeepStackProgramSource()};
  for (const std::string_view src : sources) {
    EXPECT_TRUE(vm::Assemble(src).ok);
  }
}

TEST(Programs, PaddingGrowsSegments) {
  const vm::AsmOutput plain = vm::Assemble(core::CounterProgramSource());
  const vm::AsmOutput padded =
      vm::Assemble(core::WithPadding(core::CounterProgramSource(), 1000, 4096));
  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(padded.ok);
  EXPECT_EQ(padded.image.text.size(), plain.image.text.size() + 1000 * vm::kInstrBytes);
  EXPECT_EQ(padded.image.data.size(), plain.image.data.size() + 4096);
}

TEST(Programs, PaddedCounterStillWorks) {
  World world;
  core::InstallProgram(world.host("brick"), "/bin/bigcounter",
                       core::WithPadding(core::CounterProgramSource(), 1400, 5600));
  const int32_t pid = world.StartVm("brick", "/bin/bigcounter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("pad\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  EXPECT_NE(world.console("brick")->PlainOutput().find("r=2 s=2 k=2"), std::string::npos);
}

}  // namespace
}  // namespace pmig
