// The placement engine and the crash-blind-placement fix.
//
// The bug under test: the pre-engine balancer surveyed *every* host — including
// crashed ones, which report zero load and so look maximally idle — and fired
// one-shot migrations at them. These tests pin the fix from every side: surveys
// and policies skip down hosts, the fault history decays so recovered hosts
// re-qualify, the default kLoadOnly policy reproduces the legacy balancer's
// decision sequence bit-for-bit on a healthy cluster, and a balancer run
// against a crash-and-recover schedule loses no process, aims nothing at a dead
// host, and replays deterministically.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/evacuate.h"
#include "src/apps/load_balancer.h"
#include "src/apps/night_shift.h"
#include "src/apps/placement.h"
#include "src/core/dump_format.h"
#include "src/core/test_programs.h"
#include "src/sim/fault_history.h"
#include "src/sim/hash.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using apps::PlacementEngine;
using apps::PlacementPolicy;
using apps::PlacementQuery;
using kernel::SyscallApi;
using test::kUserUid;
using test::World;
using test::WorldOptions;

// Runs `fn` as root on `host`; returns its exit code.
int RunSystem(World& world, std::string_view host, kernel::NativeTask::Entry fn) {
  kernel::SpawnOptions opts;  // root
  opts.tty = world.console(host);
  opts.cwd = "/";
  const int32_t pid = world.host(host).SpawnNative("system", std::move(fn), opts);
  world.RunUntilExited(host, pid, sim::Seconds(1200));
  return world.ExitInfoOf(host, pid).exit_code;
}

// --- The fault history signal ---

TEST(FaultHistory, ScoresDecayAndSuccessesForgive) {
  sim::VirtualClock clock;
  sim::FaultHistory history(&clock, /*half_life=*/sim::Seconds(10));
  EXPECT_EQ(history.Score("schooner"), 0.0);

  history.RecordFailure("schooner", Errno::kHostUnreach);
  const double fresh = history.Score("schooner");
  EXPECT_GT(fresh, 1.0);  // an unreachable host is strong evidence

  clock.Advance(sim::Seconds(10));
  EXPECT_NEAR(history.Score("schooner"), fresh / 2, 1e-9);
  clock.Advance(sim::Seconds(40));
  EXPECT_LT(history.Score("schooner"), 0.1);  // decayed: the host re-qualifies

  // A success after recovery collapses what little weight remains.
  history.RecordFailure("schooner", Errno::kHostUnreach);
  history.RecordSuccess("schooner");
  EXPECT_LT(history.Score("schooner"), fresh / 2);
  EXPECT_EQ(history.failures("schooner"), 2);
  EXPECT_EQ(history.successes("schooner"), 1);

  // Other hosts are unaffected.
  EXPECT_EQ(history.Score("brador"), 0.0);
}

TEST(FaultHistory, MigrateOutcomesFeedTheClusterHistory) {
  WorldOptions options;
  options.num_hosts = 2;
  World world(options);
  world.host("schooner").set_down(true);

  const int32_t pid = world.StartVm("brick", "/bin/hog", {"hog", "40000000"});
  world.cluster().RunFor(sim::Millis(100));
  net::Network* net = &world.cluster().network();
  RunSystem(world, "brick", [net, pid](SyscallApi& api) {
    return core::Migrate(api, *net, pid, "brick", "schooner");
  });
  EXPECT_GT(world.cluster().fault_history().failures("schooner"), 0);
  EXPECT_GT(world.cluster().fault_history().Score("schooner"), 0.0);
}

// --- Surveys and the engine skip dead hosts ---

TEST(Placement, SurveySkipsDownHosts) {
  WorldOptions options;
  options.num_hosts = 3;
  World world(options);
  world.StartVm("brick", "/bin/hog", {"hog", "4000000"});
  world.cluster().RunFor(sim::Millis(50));
  world.host("schooner").set_down(true);

  const auto loads = apps::SurveyLoad(world.cluster().network());
  ASSERT_EQ(loads.size(), 2u);  // a crashed machine is not an idle machine
  EXPECT_EQ(loads[0].first, "brick");
  EXPECT_EQ(loads[1].first, "brador");
}

TEST(Placement, EngineNeverPicksADownHost) {
  WorldOptions options;
  options.num_hosts = 3;
  World world(options);
  PlacementEngine engine(&world.cluster().network(), PlacementPolicy::kLoadOnly);
  PlacementQuery query;
  query.from_host = "brick";

  // Healthy cluster: ties on load resolve to the first host in network order —
  // exactly the legacy min_element choice.
  EXPECT_EQ(engine.PickTarget(query), "schooner");

  world.host("schooner").set_down(true);
  EXPECT_EQ(engine.PickTarget(query), "brador");

  world.host("brador").set_down(true);
  EXPECT_EQ(engine.PickTarget(query), "");  // no eligible target is reported, not guessed
}

TEST(Placement, FaultAwareExcludesFailingHostUntilScoreDecays) {
  WorldOptions options;
  options.num_hosts = 3;
  World world(options);
  sim::FaultHistory& history = world.cluster().fault_history();
  history.set_half_life(sim::Seconds(10));
  history.RecordFailure("schooner", Errno::kHostUnreach);

  PlacementEngine fault_aware(&world.cluster().network(), PlacementPolicy::kFaultAware);
  PlacementEngine load_only(&world.cluster().network(), PlacementPolicy::kLoadOnly);
  PlacementQuery query;
  query.from_host = "brick";

  // Load-only is blind to the signal; fault-aware routes around it.
  EXPECT_EQ(load_only.PickTarget(query), "schooner");
  EXPECT_EQ(fault_aware.PickTarget(query), "brador");
  EXPECT_FALSE(fault_aware.Eligible(world.host("schooner")));

  // After the score decays the recovered host re-qualifies. The residual score
  // still breaks ties toward the never-failed host, so prove requalification
  // two ways: eligibility, and winning outright once brador is the busier one.
  world.cluster().RunFor(sim::Seconds(60));
  EXPECT_TRUE(fault_aware.Eligible(world.host("schooner")));
  EXPECT_EQ(fault_aware.PickTarget(query), "brador");  // pristine wins the tie
  world.StartVm("brador", "/bin/hog", {"hog", "40000000"});
  world.cluster().RunFor(sim::Millis(100));
  EXPECT_EQ(fault_aware.PickTarget(query), "schooner");
}

TEST(Placement, CostAwarePrefersTheWarmSegmentCache) {
  WorldOptions options;
  options.num_hosts = 3;
  World world(options);
  const int32_t pid = world.StartVm("brick", "/bin/hog", {"hog", "40000000"});
  world.cluster().RunFor(sim::Millis(100));

  // Seed brador's segment cache with the hog's text digest, as a previous
  // --cached migration would have.
  kernel::Proc* p = world.host("brick").FindProc(pid);
  ASSERT_NE(p, nullptr);
  ASSERT_NE(p->vm, nullptr);
  const uint64_t digest = sim::HashBytes(p->vm->text);
  world.host("brador").vfs().SetupMkdirAll("/var/segcache");
  world.host("brador").vfs().SetupCreateFile(core::SegCachePath(digest), "seg");

  PlacementQuery query;
  query.from_host = "brick";
  query.pid = pid;
  PlacementEngine load_only(&world.cluster().network(), PlacementPolicy::kLoadOnly);
  PlacementEngine cost_aware(&world.cluster().network(), PlacementPolicy::kCostAware);
  EXPECT_EQ(load_only.PickTarget(query), "schooner");  // blind tie-break
  EXPECT_EQ(cost_aware.PickTarget(query), "brador");   // text travels by digest

  const auto scores = cost_aware.Score(query);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_LT(scores[1].est_bytes, scores[0].est_bytes);  // brador is cheaper
}

// --- Legacy equivalence: kLoadOnly reproduces the pre-engine balancer ---

// A copy of the balancer loop as it stood before the placement engine (idlest =
// min_element over the survey, one-shot migrations), instrumented to log the
// same decision string the new balancer records. Like the current balancer, it
// exits instead of paying a trailing poll_interval sleep after its last round
// (the pre-fix loop slept even when no round would follow, inflating every
// converged run's timeline by one interval).
std::string LegacyRunLoadBalancer(SyscallApi& api, net::Network& net,
                                  const apps::LoadBalancerOptions& options) {
  std::string decisions;
  const auto last_round = [&options](int round) {
    return round + 1 >= options.max_rounds;
  };
  for (int round = 0; round < options.max_rounds; ++round) {
    auto loads = apps::SurveyLoad(net);
    auto busiest = std::max_element(loads.begin(), loads.end(),
                                    [](const auto& a, const auto& b) { return a.second < b.second; });
    auto idlest = std::min_element(loads.begin(), loads.end(),
                                   [](const auto& a, const auto& b) { return a.second < b.second; });
    if (busiest == loads.end() || idlest == loads.end()) break;
    if (busiest->second - idlest->second < options.imbalance_threshold) {
      int total = 0;
      for (const auto& [host, n] : loads) total += n;
      if (total == 0 || last_round(round)) break;
      api.Sleep(options.poll_interval);
      continue;
    }
    kernel::Kernel* from = net.FindHost(busiest->first);
    kernel::Proc* candidate = nullptr;
    for (kernel::Proc* q : from->ListProcs()) {  // legacy PickCandidate, inlined
      if (q->kind != kernel::ProcKind::kVm || q->state != kernel::ProcState::kRunnable) continue;
      if (api.Now() - q->start_time < options.min_age) continue;
      bool skip = false;
      for (kernel::Proc* c : from->ListProcs()) {
        if (c->ppid == q->pid) skip = true;
      }
      for (const kernel::OpenFilePtr& f : q->fds) {
        if (f != nullptr && f->kind != kernel::FileKind::kInode) skip = true;
      }
      if (skip) continue;
      if (candidate == nullptr || q->start_time < candidate->start_time) candidate = q;
    }
    if (candidate == nullptr) {
      if (last_round(round)) break;
      api.Sleep(options.poll_interval);
      continue;
    }
    const int32_t victim = candidate->pid;
    const int rc = core::Migrate(api, net, victim, busiest->first, idlest->first,
                                 options.use_daemon);
    decisions += std::to_string(victim) + ":" + busiest->first + "->" + idlest->first +
                 "=" + std::to_string(rc) + ";";
    if (last_round(round)) break;
    api.Sleep(options.poll_interval);
  }
  return decisions;
}

TEST(Placement, LoadOnlyReproducesLegacyDecisionSequence) {
  auto scenario = [](bool legacy, std::string* decisions) {
    WorldOptions options;
    options.num_hosts = 3;
    options.daemons = true;
    World world(options);
    for (int i = 0; i < 5; ++i) {
      world.StartVm("brick", "/bin/hog", {"hog", "4000000"});
    }
    world.cluster().RunFor(sim::Seconds(3));
    net::Network* net = &world.cluster().network();
    RunSystem(world, "brick", [net, legacy, decisions](SyscallApi& api) {
      apps::LoadBalancerOptions lb;
      lb.poll_interval = sim::Seconds(2);
      lb.min_age = sim::Seconds(1);
      lb.max_rounds = 12;
      if (legacy) {
        *decisions = LegacyRunLoadBalancer(api, *net, lb);
      } else {
        *decisions = apps::RunLoadBalancer(api, *net, lb).decisions;
      }
      return 0;
    });
    return world.cluster().clock().now();
  };
  std::string legacy_decisions, engine_decisions;
  const sim::Nanos legacy_clock = scenario(true, &legacy_decisions);
  const sim::Nanos engine_clock = scenario(false, &engine_decisions);
  EXPECT_FALSE(legacy_decisions.empty());  // the scenario must actually migrate
  EXPECT_EQ(engine_decisions, legacy_decisions);
  EXPECT_EQ(engine_clock, legacy_clock);  // same decisions, same virtual timeline
}

// The exit paths pay no trailing poll_interval: a balancer that just ran its
// last allowed round returns immediately instead of sleeping first and
// re-discovering the round budget at the top of the loop.
TEST(Placement, BalancerExitsWithoutTrailingSleep) {
  auto scenario = [](int max_rounds) {
    WorldOptions options;
    options.num_hosts = 3;
    options.daemons = true;
    World world(options);
    // One long hog per host: balanced but busy, so every round is an idle
    // watch round and the loop's only virtual-time cost is its sleeps.
    for (const char* host : {"brick", "schooner", "brador"}) {
      world.StartVm(host, "/bin/hog", {"hog", "200000000"});
    }
    world.cluster().RunFor(sim::Seconds(2));
    net::Network* net = &world.cluster().network();
    auto elapsed = std::make_shared<sim::Nanos>(0);
    RunSystem(world, "brick", [net, max_rounds, elapsed](SyscallApi& api) {
      apps::LoadBalancerOptions lb;
      lb.poll_interval = sim::Seconds(2);
      lb.max_rounds = max_rounds;
      const sim::Nanos t0 = api.Now();
      apps::RunLoadBalancer(api, *net, lb);
      *elapsed = api.Now() - t0;
      return 0;
    });
    return *elapsed;
  };
  // A single allowed round must exit without paying the interval at all (the
  // pre-fix loop slept its full poll_interval before noticing it was done)...
  EXPECT_LT(scenario(1), sim::Seconds(2));
  // ...and N rounds pay exactly the N-1 intervals *between* rounds, never a
  // trailing one (pre-fix: >= 3 intervals here).
  const sim::Nanos three = scenario(3);
  EXPECT_GE(three, sim::Seconds(4));
  EXPECT_LT(three, sim::Seconds(6));
}

// --- The balancer under a crash-and-recover schedule ---

struct ChaosResult {
  std::string fingerprint;
  apps::LoadBalancerStats stats;
  int alive = 0;
};

ChaosResult RunBalancerChaos(PlacementPolicy policy) {
  constexpr int kJobs = 5;
  WorldOptions options;
  options.num_hosts = 3;
  options.daemons = true;
  options.metrics = true;
  options.faults.enabled = true;  // scheduled crashes only, no random rates
  options.faults.crashes.push_back({"schooner", sim::Seconds(6), sim::Seconds(18)});
  options.faults.crashes.push_back({"schooner", sim::Seconds(30), sim::Seconds(42)});
  World world(options);
  // Big enough that a migration spans whole seconds, so the crash windows can
  // land mid-flight.
  const std::string padded = core::WithPadding(core::CpuHogProgramSource(),
                                               /*extra_text_instructions=*/6000,
                                               /*extra_data_bytes=*/50000);
  for (const auto& host : world.cluster().hosts()) {
    core::InstallProgram(*host, "/bin/bighog", padded);
  }
  for (int i = 0; i < kJobs; ++i) {
    world.StartVm("brick", "/bin/bighog", {"bighog", "50000000"});
  }

  ChaosResult result;
  net::Network* net = &world.cluster().network();
  apps::LoadBalancerStats* stats = &result.stats;
  RunSystem(world, "brick", [net, policy, stats](SyscallApi& api) {
    apps::LoadBalancerOptions lb;
    lb.poll_interval = sim::Seconds(2);
    lb.min_age = sim::Seconds(1);
    lb.max_rounds = 12;
    lb.policy = policy;
    lb.migrate = core::MigrateOptions::Robust();
    *stats = apps::RunLoadBalancer(api, *net, lb);
    return 0;
  });

  // Let the last crash window pass so frozen processes thaw, then roll call.
  world.cluster().RunUntil([&world] { return !world.host("schooner").down(); },
                           sim::Seconds(120));
  world.cluster().RunFor(sim::Seconds(2));
  std::ostringstream fp;
  fp << result.stats.decisions << "|m=" << result.stats.migrations
     << ",f=" << result.stats.failed_migrations << ",fb=" << result.stats.fallback_restarts
     << ",nt=" << result.stats.no_target_rounds << ",down=" << result.stats.attempts_to_down;
  for (const auto& host : world.cluster().hosts()) {
    int alive = 0;
    for (kernel::Proc* p : host->ListProcs()) {
      if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++alive;
    }
    result.alive += alive;
    fp << "|" << host->hostname() << "=" << alive;
  }
  fp << "|t=" << world.cluster().clock().now();
  result.fingerprint = fp.str();

  EXPECT_EQ(result.alive, kJobs) << apps::PlacementPolicyName(policy) << " lost a process";
  EXPECT_EQ(result.stats.attempts_to_down, 0)
      << apps::PlacementPolicyName(policy) << " aimed a migration at a dead host";
  return result;
}

class BalancerChaos : public ::testing::TestWithParam<PlacementPolicy> {};

TEST_P(BalancerChaos, NoLossNoAimingAtDeadHostsDeterministicReplay) {
  const ChaosResult first = RunBalancerChaos(GetParam());
  const ChaosResult second = RunBalancerChaos(GetParam());
  EXPECT_EQ(first.fingerprint, second.fingerprint)
      << apps::PlacementPolicyName(GetParam()) << " did not replay deterministically";
  // The schedule must actually have interfered for the invariants to bite:
  // either a migration failed/fell back or the balancer had to wait a round.
  EXPECT_GT(first.stats.failed_migrations + first.stats.fallback_restarts +
                first.stats.no_target_rounds + first.stats.migrations,
            0);
}

INSTANTIATE_TEST_SUITE_P(Policies, BalancerChaos,
                         ::testing::Values(PlacementPolicy::kLoadOnly,
                                           PlacementPolicy::kFaultAware,
                                           PlacementPolicy::kCombined));

// --- Night shift with a crashed night host ---

TEST(NightShift, DownNightHostStrandsJobsVisiblyAndGetsNoAttempts) {
  WorldOptions options;
  options.num_hosts = 3;
  options.daemons = true;
  options.faults.enabled = true;
  // Schooner dies mid-night and is still down at dawn.
  options.faults.crashes.push_back({"schooner", sim::Seconds(20), sim::Seconds(400)});
  World world(options);
  kernel::Kernel& brick = world.host("brick");
  for (int i = 0; i < 6; ++i) {
    kernel::SpawnOptions opts;
    opts.creds = {999, 99, 999, 99};
    opts.tty = nullptr;
    opts.cwd = "/tmp";
    ASSERT_TRUE(brick.SpawnVm("/bin/hog", {"hog", "40000000"}, opts).ok());
  }

  apps::NightShiftStats stats;
  net::Network* net = &world.cluster().network();
  RunSystem(world, "brick", [net, &stats](SyscallApi& api) {
    apps::NightShiftOptions options;
    options.day_host = "brick";
    options.night_length = sim::Seconds(30);
    options.nights = 1;
    stats = apps::RunNightShift(api, *net, options);
    return 0;
  });
  EXPECT_EQ(stats.spread_migrations, 4);  // dusk happened before the crash
  EXPECT_EQ(stats.failed_spread, 0);
  EXPECT_EQ(stats.gather_migrations, 2);  // brador's pair came home
  EXPECT_EQ(stats.failed_gather, 2);      // schooner's pair: stranded, visible
  // The stranded jobs are frozen on schooner, not lost — and no migrate was
  // aimed at the dead machine (an attempt would have burned virtual seconds in
  // retries; instead the count was taken from the process table directly).
  EXPECT_EQ(apps::BatchJobsOn(world.host("schooner"), 999).size(), 2u);
  EXPECT_EQ(apps::BatchJobsOn(world.host("brador"), 999).size(), 0u);
  EXPECT_EQ(apps::BatchJobsOn(brick, 999).size(), 4u);
}

// --- Evacuation through the engine ---

TEST(Evacuate, EmptyTargetSpreadsViaEngineAndReportsUnplaced) {
  WorldOptions options;
  options.num_hosts = 3;
  options.daemons = true;
  World world(options);
  for (int i = 0; i < 2; ++i) {
    world.StartVm("brick", "/bin/hog", {"hog", "40000000"});
  }
  world.cluster().RunFor(sim::Millis(100));

  auto report = std::make_shared<apps::EvacuationReport>();
  net::Network* net = &world.cluster().network();
  RunSystem(world, "schooner", [net, report](SyscallApi& api) {
    *report = apps::EvacuateHost(api, *net, "brick", /*to_host=*/"");
    return 0;
  });
  EXPECT_EQ(report->moved.size(), 2u);
  EXPECT_TRUE(report->failed.empty());
  EXPECT_TRUE(report->unplaced.empty());
  // The engine balanced the evacuees instead of stacking them on one machine.
  int on_schooner = 0, on_brador = 0;
  for (kernel::Proc* p : world.host("schooner").ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++on_schooner;
  }
  for (kernel::Proc* p : world.host("brador").ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++on_brador;
  }
  EXPECT_EQ(on_schooner, 1);
  EXPECT_EQ(on_brador, 1);
}

TEST(Evacuate, NoEligibleTargetReportsUnplacedWithoutAttempts) {
  WorldOptions options;
  options.num_hosts = 3;
  World world(options);
  const int32_t pid = world.StartVm("brick", "/bin/hog", {"hog", "40000000"});
  world.cluster().RunFor(sim::Millis(100));
  world.host("schooner").set_down(true);
  world.host("brador").set_down(true);

  auto report = std::make_shared<apps::EvacuationReport>();
  net::Network* net = &world.cluster().network();
  const sim::Nanos t0 = world.cluster().clock().now();
  RunSystem(world, "brick", [net, report](SyscallApi& api) {
    *report = apps::EvacuateHost(api, *net, "brick", /*to_host=*/"");
    return 0;
  });
  ASSERT_EQ(report->unplaced.size(), 1u);
  EXPECT_EQ(report->unplaced[0], pid);
  EXPECT_TRUE(report->moved.empty());
  EXPECT_TRUE(report->failed.empty());
  // No doomed migrate was attempted: an attempt against a dead host would have
  // burned seconds in timeouts; reporting unplaced is near-instant.
  EXPECT_LT(world.cluster().clock().now() - t0, sim::Seconds(1));
}

}  // namespace
}  // namespace pmig
