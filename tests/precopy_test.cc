// Pre-copy migration (the V-System-style alternative transport).

#include "src/core/precopy.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace pmig {
namespace {

using core::PrecopyMigrate;
using core::PrecopyOptions;
using core::PrecopyStats;
using kernel::SyscallApi;
using test::kUserUid;
using test::World;

// Runs PrecopyMigrate from a root manager on brick; returns its stats.
Result<PrecopyStats> RunPrecopy(World& world, int32_t pid, kernel::Tty* target_tty) {
  auto out = std::make_shared<Result<PrecopyStats>>(Errno::kAgain);
  net::Network* net = &world.cluster().network();
  kernel::SpawnOptions opts;  // root
  const int32_t mgr = world.host("brick").SpawnNative(
      "precopy-mgr",
      [out, net, pid, target_tty](SyscallApi& api) {
        PrecopyOptions options;
        options.target_tty = target_tty;
        *out = PrecopyMigrate(api, *net, pid, "schooner", options);
        return out->ok() ? 0 : 1;
      },
      opts);
  world.RunUntilExited("brick", mgr, sim::Seconds(600));
  return *out;
}

TEST(Precopy, CounterSurvivesPrecopyMigration) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("pre\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  const Result<PrecopyStats> stats = RunPrecopy(world, pid, world.console("schooner"));
  ASSERT_TRUE(stats.ok()) << ErrnoName(stats.error());
  EXPECT_GT(stats->new_pid, 0);
  EXPECT_GE(stats->rounds, 1);
  EXPECT_GT(stats->bytes_precopied, 0);
  EXPECT_LT(stats->freeze_time, stats->total_time);

  // The source process is gone; the continuation runs on schooner.
  kernel::Proc* old_proc = world.host("brick").FindAnyProc(pid);
  ASSERT_NE(old_proc, nullptr);
  EXPECT_FALSE(old_proc->Alive());
  EXPECT_TRUE(old_proc->exit_info.migration_dumped);

  ASSERT_TRUE(world.RunUntilBlocked("schooner", stats->new_pid));
  world.console("schooner")->Type("post\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("schooner")->PlainOutput().find("r=3 s=3 k=3") != std::string::npos;
  }));
  EXPECT_EQ(world.FileContents("brick", "/u/user/counter.out"), "pre\npost\n");
}

TEST(Precopy, BlockedProcessConvergesInOneRound) {
  // A process blocked at its prompt dirties nothing: the first full copy is the
  // only pre-copy round, and the frozen set is tiny.
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const Result<PrecopyStats> stats = RunPrecopy(world, pid, world.console("schooner"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rounds, 1);
  EXPECT_LE(stats->bytes_frozen, 2048);
}

TEST(Precopy, RunningDirtierNeedsMoreRoundsAndBytes) {
  World world;
  const int32_t quiet = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", quiet));
  const Result<PrecopyStats> quiet_stats =
      RunPrecopy(world, quiet, world.console("schooner"));
  ASSERT_TRUE(quiet_stats.ok());

  World world2;
  const int32_t busy = world2.StartVm("brick", "/bin/dirtier", {"dirtier", "512"});
  world2.cluster().RunFor(sim::Millis(300));
  const Result<PrecopyStats> busy_stats = RunPrecopy(world2, busy, nullptr);
  ASSERT_TRUE(busy_stats.ok());
  EXPECT_GT(busy_stats->rounds, quiet_stats->rounds);
  EXPECT_GT(busy_stats->bytes_precopied, quiet_stats->bytes_precopied);
  // Kill the (immortal) migrated dirtier so the world can wind down.
  const Status st =
      world2.host("schooner").PostSignal(busy_stats->new_pid, vm::abi::kSigKill, nullptr);
  EXPECT_TRUE(st.ok());
  world2.RunUntilExited("schooner", busy_stats->new_pid);
}

TEST(Precopy, FreezeTimeBeatsFreezeEverythingMigration) {
  // The whole point of pre-copying: the frozen window is much shorter than the
  // paper's dump-then-restart, which freezes for the entire transfer.
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/dirtier", {"dirtier", "64"});
  world.cluster().RunFor(sim::Millis(300));

  // Baseline freeze: SIGDUMP -> dump files -> restart on schooner -> running.
  World baseline;
  const int32_t bpid = baseline.StartVm("brick", "/bin/dirtier", {"dirtier", "64"});
  baseline.cluster().RunFor(sim::Millis(300));
  const sim::Nanos f0 = baseline.cluster().clock().now();
  ASSERT_TRUE(baseline.host("brick").PostSignal(bpid, vm::abi::kSigDump, nullptr).ok());
  ASSERT_TRUE(baseline.RunUntilExited("brick", bpid));
  const int32_t rs = baseline.StartTool("schooner", "restart",
                                        {"-p", std::to_string(bpid), "-h", "brick"});
  ASSERT_TRUE(baseline.cluster().RunUntil([&] {
    const kernel::Proc* p = baseline.host("schooner").FindProc(rs);
    return p != nullptr && p->kind == kernel::ProcKind::kVm &&
           p->state == kernel::ProcState::kRunnable;
  }));
  const sim::Nanos baseline_freeze = baseline.cluster().clock().now() - f0;

  const Result<PrecopyStats> stats = RunPrecopy(world, pid, nullptr);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->freeze_time, baseline_freeze / 2);

  const Status st =
      world.host("schooner").PostSignal(stats->new_pid, vm::abi::kSigKill, nullptr);
  EXPECT_TRUE(st.ok());
}

TEST(Precopy, RequiresRoot) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  auto err = std::make_shared<Errno>(Errno::kOk);
  net::Network* net = &world.cluster().network();
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const int32_t mgr = world.host("brick").SpawnNative(
      "precopy-user",
      [err, net, pid](SyscallApi& api) {
        *err = PrecopyMigrate(api, *net, pid, "schooner", {}).error();
        return 0;
      },
      opts);
  world.RunUntilExited("brick", mgr);
  EXPECT_EQ(*err, Errno::kPerm);
}

TEST(Precopy, UnknownHostAndPid) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  auto errs = std::make_shared<std::pair<Errno, Errno>>();
  net::Network* net = &world.cluster().network();
  kernel::SpawnOptions opts;  // root
  const int32_t mgr = world.host("brick").SpawnNative(
      "precopy-err",
      [errs, net, pid](SyscallApi& api) {
        errs->first = PrecopyMigrate(api, *net, pid, "atlantis", {}).error();
        errs->second = PrecopyMigrate(api, *net, 987654, "schooner", {}).error();
        return 0;
      },
      opts);
  world.RunUntilExited("brick", mgr);
  EXPECT_EQ(errs->first, Errno::kHostUnreach);
  EXPECT_EQ(errs->second, Errno::kSrch);
}

}  // namespace
}  // namespace pmig
