// Unit tests for the simulation base: virtual clock, RNG, trace log, byte codec,
// and the cost-model helpers.

#include <gtest/gtest.h>

#include "src/sim/bytes.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/rng.h"
#include "src/sim/trace.h"

namespace pmig::sim {
namespace {

TEST(VirtualClock, StartsAtZero) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
}

TEST(VirtualClock, AdvanceMovesTime) {
  VirtualClock clock;
  clock.Advance(Millis(5));
  EXPECT_EQ(clock.now(), Millis(5));
}

TEST(VirtualClock, TimerFiresAtDeadline) {
  VirtualClock clock;
  Nanos fired_at = -1;
  clock.CallAfter(Millis(10), [&] { fired_at = clock.now(); });
  clock.Advance(Millis(5));
  EXPECT_EQ(fired_at, -1);
  clock.Advance(Millis(5));
  EXPECT_EQ(fired_at, Millis(10));
}

TEST(VirtualClock, TimersFireInDeadlineOrder) {
  VirtualClock clock;
  std::vector<int> order;
  clock.CallAfter(Millis(20), [&] { order.push_back(2); });
  clock.CallAfter(Millis(10), [&] { order.push_back(1); });
  clock.CallAfter(Millis(30), [&] { order.push_back(3); });
  clock.Advance(Millis(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(VirtualClock, EqualDeadlinesFireFifo) {
  VirtualClock clock;
  std::vector<int> order;
  clock.CallAfter(Millis(10), [&] { order.push_back(1); });
  clock.CallAfter(Millis(10), [&] { order.push_back(2); });
  clock.Advance(Millis(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(VirtualClock, CancelledTimerDoesNotFire) {
  VirtualClock clock;
  bool fired = false;
  const uint64_t id = clock.CallAfter(Millis(10), [&] { fired = true; });
  clock.CancelTimer(id);
  clock.Advance(Millis(20));
  EXPECT_FALSE(fired);
}

TEST(VirtualClock, TimerMayScheduleAnotherTimer) {
  VirtualClock clock;
  bool inner = false;
  clock.CallAfter(Millis(10), [&] {
    clock.CallAfter(Millis(10), [&] { inner = true; });
  });
  clock.Advance(Millis(30));
  EXPECT_TRUE(inner);
}

TEST(VirtualClock, NextDeadlineReportsEarliest) {
  VirtualClock clock;
  EXPECT_EQ(clock.NextDeadline(), -1);
  clock.CallAfter(Millis(50), [] {});
  clock.CallAfter(Millis(20), [] {});
  EXPECT_EQ(clock.NextDeadline(), Millis(20));
}

TEST(VirtualClock, NowInsideTimerEqualsDeadline) {
  VirtualClock clock;
  Nanos inside = -1;
  clock.CallAfter(Millis(7), [&] { inside = clock.now(); });
  clock.Advance(Millis(100));
  EXPECT_EQ(inside, Millis(7));
  EXPECT_EQ(clock.now(), Millis(100));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.Double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, IdentHasRequestedLength) {
  Rng rng(3);
  EXPECT_EQ(rng.Ident(8).size(), 8u);
}

TEST(TraceLog, DisabledByDefault) {
  TraceLog log;
  log.Add(TraceEvent{0, TraceCategory::kApp, "h", 1, "x"});
  EXPECT_TRUE(log.events().empty());
}

TEST(TraceLog, RecordsWhenEnabled) {
  TraceLog log;
  log.set_enabled(true);
  log.Add(TraceEvent{Millis(1), TraceCategory::kSignal, "brick", 100, "signal 3 posted"});
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.CountMatching("signal 3"), 1u);
  EXPECT_EQ(log.CountMatching("nope"), 0u);
}

TEST(TraceLog, BoundedCapacity) {
  TraceLog log(4);
  log.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    log.Add(TraceEvent{0, TraceCategory::kApp, "h", i, "e" + std::to_string(i)});
  }
  EXPECT_EQ(log.events().size(), 4u);
  EXPECT_EQ(log.events().front().pid, 6);
}

TEST(TraceLog, EvictionDropsOldestAcrossRefills) {
  TraceLog log(3);
  log.set_enabled(true);
  for (int i = 0; i < 100; ++i) {
    log.Add(TraceEvent{Millis(i), TraceCategory::kApp, "h", i, "e" + std::to_string(i)});
    EXPECT_LE(log.events().size(), 3u);
  }
  ASSERT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.events().front().pid, 97);  // oldest survivor
  EXPECT_EQ(log.events().back().pid, 99);
  EXPECT_EQ(log.events().front().when, Millis(97));
}

TEST(TraceLog, DisableStopsRecordingButKeepsEvents) {
  TraceLog log;
  log.set_enabled(true);
  log.Add(TraceEvent{0, TraceCategory::kApp, "h", 1, "kept"});
  log.set_enabled(false);
  log.Add(TraceEvent{0, TraceCategory::kApp, "h", 2, "dropped"});
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.events().front().text, "kept");
}

TEST(TraceLog, MatchingFiltersByCategory) {
  TraceLog log;
  log.set_enabled(true);
  log.Add(TraceEvent{0, TraceCategory::kSignal, "brick", 1, "sigdump posted"});
  log.Add(TraceEvent{1, TraceCategory::kMigration, "brick", 1, "sigdump dump begun"});
  log.Add(TraceEvent{2, TraceCategory::kNet, "brick", 1, "rsh connect"});
  EXPECT_EQ(log.CountMatching("sigdump"), 2u);
  EXPECT_EQ(log.CountMatching("sigdump", TraceCategory::kMigration), 1u);
  EXPECT_EQ(log.CountMatching("sigdump", TraceCategory::kNet), 0u);
  const auto all = log.Matching("sigdump");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->when, 0);  // oldest first
  const auto mig = log.Matching("sigdump", TraceCategory::kMigration);
  ASSERT_EQ(mig.size(), 1u);
  EXPECT_EQ(mig[0]->text, "sigdump dump begun");
  // An empty needle matches everything in the category.
  EXPECT_EQ(log.CountMatching("", TraceCategory::kNet), 1u);
}

TEST(TraceLog, FormatContainsFields) {
  TraceEvent e{Seconds(2), TraceCategory::kMigration, "brick", 123, "hello"};
  const std::string s = e.Format();
  EXPECT_NE(s.find("migration"), std::string::npos);
  EXPECT_NE(s.find("brick:123"), std::string::npos);
  EXPECT_NE(s.find("hello"), std::string::npos);
}

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.U8(0xAB);
  w.U16(0xCDEF);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-7);
  w.I64(-9000000000LL);
  ByteReader r(w.str());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0xCDEF);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I32(), -7);
  EXPECT_EQ(r.I64(), -9000000000LL);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(Bytes, RoundTripStringAndBlob) {
  ByteWriter w;
  w.Str("hello world");
  w.Blob({1, 2, 3});
  ByteReader r(w.str());
  EXPECT_EQ(r.Str(), "hello world");
  EXPECT_EQ(r.Blob(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.ok());
}

TEST(Bytes, TruncatedInputSetsNotOk) {
  ByteWriter w;
  w.U32(5);
  ByteReader r(w.str().substr(0, 2));
  (void)r.U32();
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, OversizedStringLengthFailsGracefully) {
  ByteWriter w;
  w.U32(1000);  // claims 1000 bytes, provides none
  ByteReader r(w.str());
  EXPECT_EQ(r.Str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(CostModel, DiskIoRoundsUpBlocks) {
  CostModel costs;
  EXPECT_EQ(costs.DiskIo(1).wait, costs.disk_block_latency);
  EXPECT_EQ(costs.DiskIo(costs.disk_block_bytes).wait, costs.disk_block_latency);
  EXPECT_EQ(costs.DiskIo(costs.disk_block_bytes + 1).wait, 2 * costs.disk_block_latency);
  EXPECT_EQ(costs.DiskIo(0).wait, 0);
  EXPECT_EQ(costs.DiskIo(0).cpu, 0);
}

TEST(CostModel, NetIoIncludesRpcLatency) {
  CostModel costs;
  EXPECT_GE(costs.NetIo(0).wait, costs.nfs_rpc);
  EXPECT_GT(costs.NetIo(1000).wait, costs.NetIo(10).wait);
}

}  // namespace
}  // namespace pmig::sim
