// Kernel tests: processes, scheduling, fd tables, file syscalls, pipes, sockets,
// terminals, signals, wait semantics, and the Section 5.1 name tracking.

#include "src/kernel/kernel.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace pmig {
namespace {

using kernel::Credentials;
using kernel::ExitInfo;
using kernel::kNoFile;
using kernel::Proc;
using kernel::ProcKind;
using kernel::ProcState;
using kernel::SpawnOptions;
using kernel::SyscallApi;
using kernel::WaitResult;
using test::kUserUid;
using test::World;
using test::WorldOptions;
using vm::abi::OpenFlags;

SpawnOptions UserOpts(World& world, std::string_view host = "brick") {
  SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.tty = world.console(host);
  opts.cwd = "/u/user";
  return opts;
}

// Runs `body` as a native process on brick to completion; returns its exit code.
int RunNative(World& world, kernel::NativeTask::Entry body) {
  kernel::Kernel& k = world.host("brick");
  const int32_t pid = k.SpawnNative("test-native", std::move(body), UserOpts(world));
  world.RunUntilExited("brick", pid);
  return world.ExitInfoOf("brick", pid).exit_code;
}

TEST(KernelProc, SpawnNativeRunsToCompletion) {
  World world;
  bool ran = false;
  const int code = RunNative(world, [&ran](SyscallApi&) {
    ran = true;
    return 7;
  });
  EXPECT_TRUE(ran);
  EXPECT_EQ(code, 7);
}

TEST(KernelProc, ExitThrowUnwinds) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    api.Exit(42);
    return 0;  // not reached; Exit() unwinds
  });
  EXPECT_EQ(code, 42);
}

TEST(KernelProc, PidsAreUniqueAndHostDisjoint) {
  World world;
  kernel::Kernel& a = world.host("brick");
  kernel::Kernel& b = world.host("schooner");
  const int32_t p1 = a.SpawnNative("x", [](SyscallApi&) { return 0; }, UserOpts(world));
  const int32_t p2 = a.SpawnNative("y", [](SyscallApi&) { return 0; }, UserOpts(world));
  const int32_t p3 =
      b.SpawnNative("z", [](SyscallApi&) { return 0; }, UserOpts(world, "schooner"));
  EXPECT_NE(p1, p2);
  EXPECT_NE(p1, p3);
  EXPECT_NE(p2, p3);
}

TEST(KernelProc, StdioAttachedToTty) {
  World world;
  RunNative(world, [](SyscallApi& api) {
    const Result<int64_t> n = api.Write(1, "to stdout\n");
    return n.ok() ? 0 : 1;
  });
  EXPECT_NE(world.console("brick")->PlainOutput().find("to stdout"), std::string::npos);
}

TEST(KernelProc, TimesAccumulate) {
  World world;
  kernel::Kernel& k = world.host("brick");
  const int32_t pid = k.SpawnNative("t",
                                    [](SyscallApi& api) {
                                      for (int i = 0; i < 10; ++i) {
                                        const auto r = api.Open("/", OpenFlags::kORdOnly);
                                        if (r.ok()) {
                                          const Status st = api.Close(*r);
                                          (void)st;
                                        }
                                      }
                                      return 0;
                                    },
                                    UserOpts(world));
  world.RunUntilExited("brick", pid);
  const Proc* p = k.FindAnyProc(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_GT(p->stime, 0);
  EXPECT_GT(p->utime, 0);
}

// --- File descriptors and file syscalls ---

TEST(KernelFiles, CreatWriteReadBack) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    const Result<int> fd = api.Creat("notes.txt", 0644);
    if (!fd.ok()) return 1;
    if (!api.Write(*fd, "hello kernel").ok()) return 2;
    if (!api.Close(*fd).ok()) return 3;
    const Result<int> rd = api.Open("notes.txt", OpenFlags::kORdOnly);
    if (!rd.ok()) return 4;
    const Result<std::string> data = api.ReadAll(*rd);
    if (!data.ok() || *data != "hello kernel") return 5;
    return 0;
  });
  EXPECT_EQ(code, 0);
  EXPECT_EQ(world.FileContents("brick", "/u/user/notes.txt"), "hello kernel");
}

TEST(KernelFiles, FdsAllocatedLowestFirst) {
  World world;
  RunNative(world, [](SyscallApi& api) {
    // 0,1,2 are the tty; the next opens must be 3, 4, then reuse 3 after close.
    const Result<int> a = api.Creat("a", 0644);
    const Result<int> b = api.Creat("b", 0644);
    if (!a.ok() || !b.ok()) return 1;
    if (*a != 3 || *b != 4) return 2;
    const Status st = api.Close(*a);
    (void)st;
    const Result<int> c = api.Creat("c", 0644);
    return (c.ok() && *c == 3) ? 0 : 3;
  });
}

TEST(KernelFiles, FdTableIsFixedSize) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    for (int i = 3; i < kNoFile; ++i) {
      const Result<int> fd = api.Creat("f" + std::to_string(i), 0644);
      if (!fd.ok()) return 1;
    }
    const Result<int> overflow = api.Creat("one-too-many", 0644);
    return overflow.error() == Errno::kMFile ? 0 : 2;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelFiles, OpenFlagsSemantics) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    // O_CREAT|O_EXCL on an existing file fails.
    const Result<int> a = api.Creat("f", 0644);
    if (!a.ok()) return 1;
    if (!api.Write(*a, "0123456789").ok()) return 2;
    const Status st = api.Close(*a);
    (void)st;
    if (api.Open("f", OpenFlags::kOWrOnly | OpenFlags::kOCreat | OpenFlags::kOExcl).error() !=
        Errno::kExist) {
      return 3;
    }
    // O_TRUNC empties it.
    const Result<int> b = api.Open("f", OpenFlags::kOWrOnly | OpenFlags::kOTrunc);
    if (!b.ok()) return 4;
    const Result<kernel::StatInfo> info = api.Stat("f");
    if (!info.ok() || info->size != 0) return 5;
    // Missing file without O_CREAT is ENOENT.
    if (api.Open("missing", OpenFlags::kORdOnly).error() != Errno::kNoEnt) return 6;
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelFiles, AppendModeSeeksToEndOnWrite) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    const Result<int> a = api.Creat("log", 0644);
    if (!a.ok() || !api.Write(*a, "one").ok()) return 1;
    const Status st = api.Close(*a);
    (void)st;
    const Result<int> b = api.Open("log", OpenFlags::kOWrOnly | OpenFlags::kOAppend);
    if (!b.ok()) return 2;
    const Result<int64_t> seek = api.Lseek(*b, 0, vm::abi::kSeekSet);
    if (!seek.ok()) return 3;
    if (!api.Write(*b, "+two").ok()) return 4;  // must land at EOF despite the seek
    return 0;
  });
  EXPECT_EQ(code, 0);
  EXPECT_EQ(world.FileContents("brick", "/u/user/log"), "one+two");
}

TEST(KernelFiles, LseekWhenceVariants) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    const Result<int> fd = api.Creat("f", 0644);
    if (!fd.ok() || !api.Write(*fd, "abcdefgh").ok()) return 1;
    if (api.Lseek(*fd, 2, vm::abi::kSeekSet).value_or(-1) != 2) return 2;
    if (api.Lseek(*fd, 3, vm::abi::kSeekCur).value_or(-1) != 5) return 3;
    if (api.Lseek(*fd, -1, vm::abi::kSeekEnd).value_or(-1) != 7) return 4;
    if (api.Lseek(*fd, -100, vm::abi::kSeekSet).error() != Errno::kInval) return 5;
    if (api.Lseek(*fd, 0, 9).error() != Errno::kInval) return 6;
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelFiles, DupSharesOffset) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    const Result<int> fd = api.Creat("f", 0644);
    if (!fd.ok() || !api.Write(*fd, "abcdef").ok()) return 1;
    const Result<int> dup = api.Dup(*fd);
    if (!dup.ok()) return 2;
    if (!api.Lseek(*fd, 1, vm::abi::kSeekSet).ok()) return 3;
    // The dup'ed descriptor sees the moved offset (shared file-table entry).
    const Result<int64_t> pos = api.Lseek(*dup, 0, vm::abi::kSeekCur);
    return (pos.ok() && *pos == 1) ? 0 : 4;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelFiles, BadFdErrors) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    if (api.Close(17).error() != Errno::kBadF) return 1;
    if (api.Read(99, 10).error() != Errno::kBadF) return 2;
    if (api.Write(-1, "x").error() != Errno::kBadF) return 3;
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelFiles, PermissionChecks) {
  World world;
  world.host("brick").vfs().SetupCreateFile("/secret", "root only", 0, 0600);
  const int code = RunNative(world, [](SyscallApi& api) {
    if (api.Open("/secret", OpenFlags::kORdOnly).error() != Errno::kAcces) return 1;
    // Creating in a root-owned 0755 directory fails for a normal user.
    if (api.Creat("/etc/hacked", 0644).error() != Errno::kAcces) return 2;
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelFiles, UnlinkAndLink) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    const Result<int> fd = api.Creat("f", 0644);
    if (!fd.ok() || !api.Write(*fd, "data").ok()) return 1;
    const Status st = api.Close(*fd);
    (void)st;
    if (!api.Link("f", "g").ok()) return 2;
    if (!api.Unlink("f").ok()) return 3;
    const Result<int> g = api.Open("g", OpenFlags::kORdOnly);
    if (!g.ok()) return 4;
    const Result<std::string> data = api.ReadAll(*g);
    if (!data.ok() || *data != "data") return 5;
    if (api.Unlink("f").error() != Errno::kNoEnt) return 6;
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelFiles, CrossMachineLinkIsExdev) {
  World world;
  world.host("schooner").vfs().SetupCreateFile("/tmp/r", "x");
  const int code = RunNative(world, [](SyscallApi& api) {
    return api.Link("/n/schooner/tmp/r", "/tmp/local").error() == Errno::kXDev ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
}

// --- Pipes and sockets ---

TEST(KernelChannels, PipeCarriesBytesAndEof) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    kernel::Kernel& k = api.kernel();
    const auto fds = k.SysPipe(api.proc());
    if (!fds.ok()) return 1;
    if (!api.Write(fds->second, "through the pipe").ok()) return 2;
    const Result<std::string> out = api.Read(fds->first, 100);
    if (!out.ok() || *out != "through the pipe") return 3;
    const Status st = api.Close(fds->second);  // close write end -> EOF
    (void)st;
    const Result<std::string> eof = api.Read(fds->first, 100);
    return (eof.ok() && eof->empty()) ? 0 : 4;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelChannels, WriteToClosedPipeIsEpipe) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    kernel::Kernel& k = api.kernel();
    const auto fds = k.SysPipe(api.proc());
    if (!fds.ok()) return 1;
    const Status st = api.Close(fds->first);
    (void)st;
    return api.Write(fds->second, "x").error() == Errno::kPipe ? 0 : 2;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelChannels, SocketPairConnected) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    kernel::Kernel& k = api.kernel();
    const auto fds = k.SysSocket(api.proc());
    if (!fds.ok()) return 1;
    const Proc& p = api.proc();
    if (p.fds[static_cast<size_t>(fds->first)]->kind != kernel::FileKind::kSocket) return 2;
    if (!api.Write(fds->second, "ping").ok()) return 3;
    const Result<std::string> out = api.Read(fds->first, 10);
    return (out.ok() && *out == "ping") ? 0 : 4;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelChannels, LseekOnPipeIsEspipe) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    const auto fds = api.kernel().SysPipe(api.proc());
    if (!fds.ok()) return 1;
    return api.Lseek(fds->first, 0, vm::abi::kSeekSet).error() == Errno::kSPipe ? 0 : 2;
  });
  EXPECT_EQ(code, 0);
}

// --- Terminals ---

TEST(KernelTty, CookedModeDeliversLines) {
  World world;
  kernel::Tty* tty = world.console("brick");
  tty->Type("partial");
  EXPECT_FALSE(tty->InputReady());  // no newline yet in cooked mode
  tty->Type(" line\nmore\n");
  EXPECT_TRUE(tty->InputReady());
  EXPECT_EQ(tty->ConsumeInput(100), "partial line\n");
  EXPECT_EQ(tty->ConsumeInput(100), "more\n");
}

TEST(KernelTty, RawModeDeliversBytes) {
  World world;
  kernel::Tty* tty = world.console("brick");
  tty->set_flags(vm::abi::kTtyRaw);
  tty->Type("a");
  EXPECT_TRUE(tty->InputReady());
  EXPECT_EQ(tty->ConsumeInput(100), "a");
}

TEST(KernelTty, EchoAppearsInOutput) {
  World world;
  kernel::Tty* tty = world.console("brick");
  tty->Type("echoed\n");
  EXPECT_NE(tty->PlainOutput().find("echoed"), std::string::npos);
  tty->ClearOutput();
  tty->set_flags(vm::abi::kTtyRaw);  // raw implies no echo here
  tty->Type("silent");
  EXPECT_EQ(tty->PlainOutput().find("silent"), std::string::npos);
}

TEST(KernelTty, ReadBlocksUntilTyped) {
  World world;
  kernel::Kernel& k = world.host("brick");
  auto got = std::make_shared<std::string>();
  const int32_t pid = k.SpawnNative("reader",
                                    [got](SyscallApi& api) {
                                      const Result<std::string> line = api.Read(0, 100);
                                      if (line.ok()) *got = *line;
                                      return 0;
                                    },
                                    UserOpts(world));
  world.cluster().RunFor(sim::Seconds(1));
  EXPECT_TRUE(got->empty());  // still blocked
  world.console("brick")->Type("wake up\n");
  world.RunUntilExited("brick", pid);
  EXPECT_EQ(*got, "wake up\n");
}

TEST(KernelTty, IoctlGetSetFlags) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    const Result<uint16_t> flags = api.TtyGetFlags(0);
    if (!flags.ok()) return 1;
    if (!api.TtySetFlags(0, vm::abi::kTtyRaw).ok()) return 2;
    const Result<uint16_t> raw = api.TtyGetFlags(0);
    if (!raw.ok() || *raw != vm::abi::kTtyRaw) return 3;
    // ioctl on a non-tty is ENOTTY.
    const Result<int> fd = api.Creat("f", 0644);
    if (!fd.ok()) return 4;
    return api.TtyGetFlags(*fd).error() == Errno::kNoTty ? 0 : 5;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelTty, DevTtyOpensControllingTerminal) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    const Result<int> fd = api.Open("/dev/tty", OpenFlags::kORdWr);
    if (!fd.ok()) return 1;
    return api.Write(*fd, "via /dev/tty\n").ok() ? 0 : 2;
  });
  EXPECT_EQ(code, 0);
  EXPECT_NE(world.console("brick")->PlainOutput().find("via /dev/tty"), std::string::npos);
}

TEST(KernelTty, DevTtyWithoutControllingTerminalFails) {
  World world;
  kernel::Kernel& k = world.host("brick");
  auto err = std::make_shared<Errno>(Errno::kOk);
  SpawnOptions opts;  // no tty: a daemon
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const int32_t pid = k.SpawnNative("notty",
                                    [err](SyscallApi& api) {
                                      *err = api.Open("/dev/tty", OpenFlags::kORdWr).error();
                                      return 0;
                                    },
                                    opts);
  world.RunUntilExited("brick", pid);
  EXPECT_EQ(*err, Errno::kNoDev);
}

TEST(KernelTty, DevNullReadsEofSwallowsWrites) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    const Result<int> fd = api.Open("/dev/null", OpenFlags::kORdWr);
    if (!fd.ok()) return 1;
    if (api.Write(*fd, "vanishes").value_or(-1) != 8) return 2;
    const Result<std::string> data = api.Read(*fd, 10);
    return (data.ok() && data->empty()) ? 0 : 3;
  });
  EXPECT_EQ(code, 0);
}

// --- Name tracking (Section 5.1) ---

TEST(NameTracking, OpenRecordsAbsoluteName) {
  World world;
  kernel::Kernel& k = world.host("brick");
  auto name = std::make_shared<std::string>();
  const int32_t pid = k.SpawnNative("nt",
                                    [name](SyscallApi& api) {
                                      const Result<int> fd = api.Creat("rel.txt", 0644);
                                      if (!fd.ok()) return 1;
                                      const auto& file =
                                          api.proc().fds[static_cast<size_t>(*fd)];
                                      if (file->name.has_value()) *name = *file->name;
                                      return 0;
                                    },
                                    UserOpts(world));
  world.RunUntilExited("brick", pid);
  EXPECT_EQ(*name, "/u/user/rel.txt");
}

TEST(NameTracking, DisabledKernelRecordsNothing) {
  WorldOptions options;
  options.track_names = false;
  World world(options);
  kernel::Kernel& k = world.host("brick");
  auto has_name = std::make_shared<bool>(true);
  const int32_t pid = k.SpawnNative("nt",
                                    [has_name](SyscallApi& api) {
                                      const Result<int> fd = api.Creat("rel.txt", 0644);
                                      if (!fd.ok()) return 1;
                                      *has_name = api.proc()
                                                      .fds[static_cast<size_t>(*fd)]
                                                      ->name.has_value();
                                      return 0;
                                    },
                                    UserOpts(world));
  world.RunUntilExited("brick", pid);
  EXPECT_FALSE(*has_name);
  EXPECT_EQ(k.stats().name_allocs, 0);
}

TEST(NameTracking, ChdirUpdatesUserStructPath) {
  World world;
  kernel::Kernel& k = world.host("brick");
  auto log = std::make_shared<std::vector<std::string>>();
  const int32_t pid = k.SpawnNative(
      "cd",
      [log](SyscallApi& api) {
        auto snap = [&] { log->push_back(api.proc().u_cwd_path); };
        if (!api.Chdir("/usr/tmp").ok()) return 1;
        snap();
        if (!api.Chdir("..").ok()) return 2;
        snap();
        if (!api.Chdir(".").ok()) return 3;
        snap();
        if (!api.Chdir("tmp").ok()) return 4;
        snap();
        return 0;
      },
      UserOpts(world));
  world.RunUntilExited("brick", pid);
  ASSERT_EQ(log->size(), 4u);
  EXPECT_EQ((*log)[0], "/usr/tmp");
  EXPECT_EQ((*log)[1], "/usr");
  EXPECT_EQ((*log)[2], "/usr");
  EXPECT_EQ((*log)[3], "/usr/tmp");
}

TEST(NameTracking, UninitializedCwdSkipsRelativeUpdates) {
  // "the updating procedure being skipped if the field has not been yet
  // initialised" — and initialised by the first absolute chdir().
  World world;
  kernel::Kernel& k = world.host("brick");
  const int32_t pid = k.SpawnNative("u",
                                    [](SyscallApi& api) {
                                      api.proc().u_cwd_path.clear();  // pre-init state
                                      const Status a = api.Chdir(".");
                                      if (!a.ok()) return 1;
                                      if (!api.proc().u_cwd_path.empty()) return 2;
                                      const Status b = api.Chdir("/usr");
                                      if (!b.ok()) return 3;
                                      return api.proc().u_cwd_path == "/usr" ? 0 : 4;
                                    },
                                    UserOpts(world));
  world.RunUntilExited("brick", pid);
  EXPECT_EQ(world.ExitInfoOf("brick", pid).exit_code, 0);
}

TEST(NameTracking, StatsTrackAllocations) {
  World world;
  kernel::Kernel& k = world.host("brick");
  const int32_t pid = k.SpawnNative("s",
                                    [](SyscallApi& api) {
                                      const Result<int> fd = api.Creat("x", 0644);
                                      if (!fd.ok()) return 1;
                                      const Status st = api.Close(*fd);
                                      return st.ok() ? 0 : 2;
                                    },
                                    UserOpts(world));
  const int64_t before = k.stats().name_bytes_current;
  world.RunUntilExited("brick", pid);
  EXPECT_GT(k.stats().name_allocs, 0);
  EXPECT_GT(k.stats().name_bytes_peak, 0);
  // All closed (tty fds shared entry released at exit): back to the baseline.
  EXPECT_LE(k.stats().name_bytes_current, before + 1);
}

TEST(NameTracking, GetCwdOnlyOnModifiedKernel) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    const Result<std::string> cwd = api.GetCwd();
    return (cwd.ok() && *cwd == "/u/user") ? 0 : 1;
  });
  EXPECT_EQ(code, 0);

  WorldOptions options;
  options.track_names = false;
  World stock(options);
  const int code2 = RunNative(stock, [](SyscallApi& api) {
    return api.GetCwd().error() == Errno::kInval ? 0 : 1;
  });
  EXPECT_EQ(code2, 0);
}

// --- Signals ---

TEST(KernelSignals, KillPermissions) {
  World world;
  kernel::Kernel& k = world.host("brick");
  // A long-lived root-owned process.
  SpawnOptions root_opts;
  root_opts.creds = {0, 0, 0, 0};
  root_opts.tty = world.console("brick");
  const int32_t victim = k.SpawnNative("victim",
                                       [](SyscallApi& api) {
                                         api.Sleep(sim::Seconds(100));
                                         return 0;
                                       },
                                       root_opts);
  auto err = std::make_shared<Errno>(Errno::kOk);
  const int32_t attacker = k.SpawnNative("attacker",
                                         [victim, err](SyscallApi& api) {
                                           *err = api.Kill(victim, vm::abi::kSigTerm).error();
                                           return 0;
                                         },
                                         UserOpts(world));
  world.RunUntilExited("brick", attacker);
  EXPECT_EQ(*err, Errno::kPerm);
  kernel::Proc* v = k.FindProc(victim);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->Alive());
}

TEST(KernelSignals, KillUnknownPidIsEsrch) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    return api.Kill(99999, vm::abi::kSigTerm).error() == Errno::kSrch ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelSignals, SigTermKillsNativeProc) {
  World world;
  kernel::Kernel& k = world.host("brick");
  const int32_t sleeper = k.SpawnNative("sleeper",
                                        [](SyscallApi& api) {
                                          api.Sleep(sim::Seconds(1000));
                                          return 0;
                                        },
                                        UserOpts(world));
  world.cluster().RunFor(sim::Seconds(1));
  ASSERT_TRUE(k.PostSignal(sleeper, vm::abi::kSigTerm, nullptr).ok());
  ASSERT_TRUE(world.RunUntilExited("brick", sleeper, sim::Seconds(10)));
  EXPECT_EQ(world.ExitInfoOf("brick", sleeper).killed_by_signal, vm::abi::kSigTerm);
}

TEST(KernelSignals, SigQuitDumpsCoreForVmProc) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  ASSERT_TRUE(world.host("brick").PostSignal(pid, vm::abi::kSigQuit, nullptr).ok());
  ASSERT_TRUE(world.RunUntilExited("brick", pid));
  const ExitInfo info = world.ExitInfoOf("brick", pid);
  EXPECT_EQ(info.killed_by_signal, vm::abi::kSigQuit);
  EXPECT_TRUE(info.core_dumped);
  EXPECT_TRUE(world.FileExists("brick", "/u/user/core"));
}

TEST(KernelSignals, IgnoredSignalDoesNothing) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/handler");  // ignores SIGINT
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  ASSERT_TRUE(world.host("brick").PostSignal(pid, vm::abi::kSigInt, nullptr).ok());
  world.cluster().RunFor(sim::Seconds(1));
  kernel::Proc* p = world.host("brick").FindProc(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->Alive());
}

TEST(KernelSignals, CaughtSignalRunsVmHandler) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/handler");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->ClearOutput();
  ASSERT_TRUE(world.host("brick").PostSignal(pid, vm::abi::kSigUsr1, nullptr).ok());
  world.cluster().RunFor(sim::Millis(200));
  world.console("brick")->Type("\n");  // next loop iteration prints the hit count
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("brick")->PlainOutput().find("1\n") != std::string::npos;
  }));
}

TEST(KernelSignals, SigKillCannotBeCaught) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    kernel::SignalDisposition d;
    d.action = kernel::SignalDisposition::Action::kIgnore;
    if (api.kernel().SysSignal(api.proc(), vm::abi::kSigKill, d).error() != Errno::kInval) {
      return 1;
    }
    if (api.kernel().SysSignal(api.proc(), vm::abi::kSigDump, d).error() != Errno::kInval) {
      return 2;
    }
    return 0;
  });
  EXPECT_EQ(code, 0);
}

// --- Wait and process trees ---

TEST(KernelWait, ParentReapsChild) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    const Result<int32_t> child = api.SpawnProgram("undump", {});  // bad usage: exits 2
    if (!child.ok()) return 1;
    const Result<WaitResult> wr = api.Wait();
    if (!wr.ok()) return 2;
    if (wr->pid != *child) return 3;
    return wr->info.exit_code == 2 ? 0 : 4;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelWait, NoChildrenIsEchild) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    return api.Wait().error() == Errno::kChild ? 0 : 1;
  });
  EXPECT_EQ(code, 0);
}

TEST(KernelWait, OrphansAreAutoReaped) {
  World world;
  kernel::Kernel& k = world.host("brick");
  // Parent spawns a child then exits without waiting.
  auto child_pid = std::make_shared<int32_t>(0);
  const int32_t parent = k.SpawnNative("parent",
                                       [child_pid](SyscallApi& api) {
                                         const Result<int32_t> c =
                                             api.SpawnProgram("undump", {});
                                         if (c.ok()) *child_pid = *c;
                                         return 0;
                                       },
                                       UserOpts(world));
  world.RunUntilExited("brick", parent);
  ASSERT_GT(*child_pid, 0);
  ASSERT_TRUE(world.RunUntilExited("brick", *child_pid));
  kernel::Proc* c = k.FindAnyProc(*child_pid);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->state, ProcState::kDead);  // reaped by the kernel, not a lingering zombie
}

TEST(KernelVm, ForkReturnsTwiceWithSharedFiles) {
  World world;
  // forkwait: parent waits; child blocks reading the tty, then exits 7.
  const int32_t pid = world.StartVm("brick", "/bin/forkwait");
  kernel::Kernel& k = world.host("brick");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    int blocked = 0;
    for (kernel::Proc* p : k.ListProcs()) {
      if (p->kind == ProcKind::kVm && p->state == ProcState::kBlocked) ++blocked;
    }
    return blocked >= 2;  // parent in wait(), child in read()
  }));
  world.console("brick")->Type("go\n");
  ASSERT_TRUE(world.RunUntilExited("brick", pid));
  EXPECT_EQ(world.ExitInfoOf("brick", pid).exit_code, 0);  // wait() succeeded
}

TEST(KernelVm, ExecveRejectsNonExecutable) {
  World world;
  world.host("brick").vfs().SetupCreateFile("/bin/garbage", "not an a.out", 0, 0755);
  kernel::SpawnOptions opts = UserOpts(world);
  const Result<int32_t> pid = world.host("brick").SpawnVm("/bin/garbage", {}, opts);
  EXPECT_EQ(pid.error(), Errno::kNoExec);
}

TEST(KernelVm, ExecveRejectsIsaMismatch) {
  WorldOptions options;
  options.isa = {vm::IsaLevel::kIsa10};  // brick is a Sun-2
  World world(options);
  kernel::SpawnOptions opts = UserOpts(world);
  const Result<int32_t> pid = world.host("brick").SpawnVm("/bin/isa20", {}, opts);
  EXPECT_EQ(pid.error(), Errno::kNoExec);
}

TEST(KernelSched, RoundRobinSharesCpu) {
  World world;
  kernel::Kernel& k = world.host("brick");
  const int32_t a = world.StartVm("brick", "/bin/hog", {"hog", "400000"});
  const int32_t b = world.StartVm("brick", "/bin/hog", {"hog", "400000"});
  world.cluster().RunFor(sim::Seconds(2));
  kernel::Proc* pa = k.FindProc(a);
  kernel::Proc* pb = k.FindProc(b);
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);
  EXPECT_GT(pa->utime, 0);
  EXPECT_GT(pb->utime, 0);
  // Fair to within one quantum's worth of skew.
  const double ratio = static_cast<double>(pa->utime) / static_cast<double>(pb->utime);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
  EXPECT_GT(k.stats().context_switches, 10);
}

TEST(KernelSched, SetReUidRules) {
  World world;
  const int code = RunNative(world, [](SyscallApi& api) {
    // Non-root can set to own uids only.
    if (!api.SetReUid(kUserUid, kUserUid).ok()) return 1;
    if (api.SetReUid(0, 0).error() != Errno::kPerm) return 2;
    if (!api.SetReUid(-1, kUserUid).ok()) return 3;
    return 0;
  });
  EXPECT_EQ(code, 0);
}

}  // namespace
}  // namespace pmig
