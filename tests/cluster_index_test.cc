// The cluster index: incrementally maintained placement state.
//
// The contract under test: indexed placement is an *optimisation*, never a
// behaviour change. A fresh index must reproduce the full scan's decisions
// exactly (same targets, same tie-breaks, same virtual timeline); staleness
// refresh must re-survey only the entries past their ttl; free signals
// (liveness, reachability, fault scores, sampler snapshots, migrate deltas)
// must keep the view current without survey messages; and an indexed balancer
// under a crash schedule must lose nothing, aim at nothing down or
// partitioned, and replay bit-identically.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/cluster_index.h"
#include "src/apps/load_balancer.h"
#include "src/apps/night_shift.h"
#include "src/apps/placement.h"
#include "src/apps/recovery.h"
#include "src/core/test_programs.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using apps::ClusterIndex;
using apps::ClusterIndexOptions;
using apps::IndexEntry;
using apps::PlacementEngine;
using apps::PlacementPolicy;
using apps::PlacementQuery;
using kernel::SyscallApi;
using test::World;
using test::WorldOptions;

// Runs `fn` as root on `host`; returns its exit code.
int RunSystem(World& world, std::string_view host, kernel::NativeTask::Entry fn) {
  kernel::SpawnOptions opts;  // root
  opts.tty = world.console(host);
  opts.cwd = "/";
  const int32_t pid = world.host(host).SpawnNative("system", std::move(fn), opts);
  world.RunUntilExited(host, pid, sim::Seconds(1200));
  return world.ExitInfoOf(host, pid).exit_code;
}

int64_t SurveyMessages(World& world) {
  return world.cluster().AggregateMetrics().Counter("placement.survey_msgs");
}

// --- Fresh index == full scan ---

TEST(ClusterIndex, FreshIndexMatchesFullScanAcrossPolicies) {
  WorldOptions options;
  options.num_hosts = 4;
  World world(options);
  // An uneven cluster: 3 jobs on brick, 1 on schooner, 0 on brador, 2 on classic.
  std::vector<int32_t> brick_pids;
  for (int i = 0; i < 3; ++i) {
    brick_pids.push_back(world.StartVm("brick", "/bin/hog", {"hog", "50000000"}));
  }
  world.StartVm("schooner", "/bin/hog", {"hog", "50000000"});
  for (int i = 0; i < 2; ++i) {
    world.StartVm("classic", "/bin/hog", {"hog", "50000000"});
  }
  world.cluster().RunFor(sim::Millis(100));

  net::Network* net = &world.cluster().network();
  ClusterIndex index(net, "brick");
  index.Refresh(world.cluster().clock().now());

  for (const PlacementPolicy policy :
       {PlacementPolicy::kLoadOnly, PlacementPolicy::kCostAware,
        PlacementPolicy::kFaultAware, PlacementPolicy::kCombined}) {
    const PlacementEngine engine(net, policy);
    PlacementQuery scan;
    scan.from_host = "brick";
    scan.pid = brick_pids[0];
    PlacementQuery indexed = scan;
    indexed.index = &index;
    EXPECT_EQ(engine.PickTarget(indexed), engine.PickTarget(scan))
        << apps::PlacementPolicyName(policy);

    // Score lists agree element for element (hosts and loads).
    const auto a = engine.Score(scan);
    const auto b = engine.Score(indexed);
    ASSERT_EQ(a.size(), b.size()) << apps::PlacementPolicyName(policy);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].host, b[i].host);
      EXPECT_EQ(a[i].load, b[i].load);
    }
  }
}

TEST(ClusterIndex, IndexedBalancerWithZeroTtlMatchesFullScan) {
  auto scenario = [](bool use_index, apps::LoadBalancerStats* stats) {
    WorldOptions options;
    options.num_hosts = 3;
    options.daemons = true;
    World world(options);
    for (int i = 0; i < 5; ++i) {
      world.StartVm("brick", "/bin/hog", {"hog", "4000000"});
    }
    world.cluster().RunFor(sim::Seconds(3));
    net::Network* net = &world.cluster().network();
    RunSystem(world, "brick", [net, use_index, stats](SyscallApi& api) {
      apps::LoadBalancerOptions lb;
      lb.poll_interval = sim::Seconds(2);
      lb.min_age = sim::Seconds(1);
      lb.max_rounds = 12;
      lb.use_index = use_index;
      lb.index_ttl = 0;  // trust nothing: every round re-surveys (the gate)
      *stats = apps::RunLoadBalancer(api, *net, lb);
      return 0;
    });
    return world.cluster().clock().now();
  };
  apps::LoadBalancerStats scan, indexed;
  const sim::Nanos scan_clock = scenario(false, &scan);
  const sim::Nanos indexed_clock = scenario(true, &indexed);
  EXPECT_FALSE(scan.decisions.empty());  // the scenario must actually migrate
  EXPECT_EQ(indexed.decisions, scan.decisions);
  EXPECT_EQ(indexed_clock, scan_clock);  // same decisions, same virtual timeline
  EXPECT_EQ(indexed.attempts_to_unreachable, 0);
}

// --- Staleness-driven refresh ---

TEST(ClusterIndex, RefreshOnlyResurveysExpiredEntries) {
  WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  World world(options);
  world.StartVm("brick", "/bin/hog", {"hog", "50000000"});
  world.cluster().RunFor(sim::Millis(50));

  ClusterIndexOptions iopts;
  iopts.ttl = sim::Seconds(10);
  ClusterIndex index(&world.cluster().network(), "brick", iopts);
  const sim::Nanos t0 = world.cluster().clock().now();

  // Never-observed entries are always stale: the first pass surveys everyone.
  EXPECT_EQ(index.Refresh(t0), 3);
  EXPECT_EQ(SurveyMessages(world), 3);

  // Inside the ttl nothing is touched — no messages, no timestamp movement.
  EXPECT_EQ(index.Refresh(t0 + sim::Seconds(5)), 0);
  EXPECT_EQ(SurveyMessages(world), 3);

  // One host re-surveyed by hand resets only its own clock...
  EXPECT_TRUE(index.RefreshHost("brador", t0 + sim::Seconds(5)));
  ASSERT_NE(index.Find("brador"), nullptr);
  EXPECT_EQ(index.Find("brador")->updated_at, t0 + sim::Seconds(5));

  // ...so a refresh past the others' ttl touches exactly the expired two.
  EXPECT_EQ(index.Refresh(t0 + sim::Seconds(12)), 2);
  EXPECT_EQ(index.Find("brick")->updated_at, t0 + sim::Seconds(12));
  EXPECT_EQ(index.Find("schooner")->updated_at, t0 + sim::Seconds(12));
  EXPECT_EQ(index.Find("brador")->updated_at, t0 + sim::Seconds(5));  // untouched
  EXPECT_EQ(SurveyMessages(world), 6);  // 3 + 1 + 2
}

// --- Free event feeds ---

TEST(ClusterIndex, NoteMigratedAdjustsRankWithoutSurveyMessages) {
  WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  World world(options);
  world.StartVm("brick", "/bin/hog", {"hog", "50000000"});
  world.StartVm("brick", "/bin/hog", {"hog", "50000000"});
  world.cluster().RunFor(sim::Millis(50));

  ClusterIndex index(&world.cluster().network(), "brick");
  index.Refresh(world.cluster().clock().now());
  const int64_t after_refresh = SurveyMessages(world);
  ASSERT_EQ(index.Find("brick")->load, 2);
  ASSERT_EQ(index.Find("brador")->load, 0);

  // A migrate outcome is a load of one moving: pure bookkeeping, no survey.
  index.NoteMigrated("brick", "brador");
  EXPECT_EQ(index.Find("brick")->load, 1);
  EXPECT_EQ(index.Find("brador")->load, 1);
  EXPECT_EQ(index.Find("brick")->occupancy, 1);
  EXPECT_EQ(index.Find("brador")->occupancy, 1);
  EXPECT_EQ(SurveyMessages(world), after_refresh);

  // The maintained rank re-orders with it: schooner (load 0) now ranks first.
  ASSERT_FALSE(index.rank().empty());
  const auto& [min_load, min_order] = *index.rank().begin();
  EXPECT_EQ(min_load, 0);
  EXPECT_EQ(index.entry(min_order).host, "schooner");
}

TEST(ClusterIndex, SamplerFeedsIndexSoRefreshSurveysNothing) {
  WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  options.sample_period = sim::Millis(500);
  World world(options);
  ClusterIndexOptions iopts;
  iopts.ttl = sim::Seconds(10);
  ClusterIndex index(&world.cluster().network(), "brick", iopts);

  world.StartVm("brick", "/bin/hog", {"hog", "50000000"});
  world.StartVm("brick", "/bin/hog", {"hog", "50000000"});
  world.cluster().RunFor(sim::Seconds(2));

  // The sampler's observations kept every entry fresh: nothing to re-survey,
  // and the observed loads match the live truth.
  EXPECT_EQ(index.Refresh(world.cluster().clock().now()), 0);
  EXPECT_EQ(SurveyMessages(world), 0);
  ASSERT_NE(index.Find("brick"), nullptr);
  EXPECT_GE(index.Find("brick")->updated_at, 0);
  EXPECT_EQ(index.Find("brick")->load, apps::HostLoad(world.host("brick")));
  EXPECT_EQ(index.Find("brador")->load, 0);
}

// --- Partitions ---

TEST(ClusterIndex, PartitionedHostExcludedAndRequalifiesOnHeal) {
  WorldOptions options;
  options.num_hosts = 3;
  options.faults.enabled = true;
  sim::PartitionFault cut;
  cut.group_a = {"brick"};
  cut.group_b = {"brador"};
  cut.begin = sim::Seconds(5);
  cut.heal = sim::Seconds(20);
  options.faults.partitions.push_back(cut);
  World world(options);
  // schooner is busy, so brador is the natural (but soon unreachable) pick.
  world.StartVm("schooner", "/bin/hog", {"hog", "200000000"});
  world.StartVm("schooner", "/bin/hog", {"hog", "200000000"});
  world.cluster().RunFor(sim::Seconds(10));  // inside the cut

  net::Network* net = &world.cluster().network();
  ClusterIndex index(net, "brick");
  index.Refresh(world.cluster().clock().now());
  EXPECT_FALSE(index.Find("brador")->reachable);

  const PlacementEngine engine(net, PlacementPolicy::kLoadOnly);
  PlacementQuery query;
  query.from_host = "brick";
  query.index = &index;
  // Without the filter the historical pick stands (and the leg would fail
  // fast); with it the unreachable host is never chosen.
  EXPECT_EQ(engine.PickTarget(query), "brador");
  query.reachable_from = "brick";
  EXPECT_EQ(engine.PickTarget(query), "schooner");

  // The full scan agrees with the index on both answers.
  PlacementQuery scan = query;
  scan.index = nullptr;
  EXPECT_EQ(engine.PickTarget(scan), "schooner");

  // Heal: reachability is a pure function of config and clock, so the same
  // query requalifies brador with no event needed (Refresh just updates the
  // recorded view).
  world.cluster().RunFor(sim::Seconds(15));  // past heal
  EXPECT_EQ(engine.PickTarget(query), "brador");
  index.RefreshHost("brador", world.cluster().clock().now());
  EXPECT_TRUE(index.Find("brador")->reachable);
}

// --- Chaos soak: determinism under crashes with the index on ---

TEST(ClusterIndex, ChaosSoakWithIndexReplaysBitIdentically) {
  constexpr int kJobs = 5;
  auto scenario = [kJobs](std::string* fingerprint) {
    WorldOptions options;
    options.num_hosts = 3;
    options.daemons = true;
    options.metrics = true;
    options.faults.enabled = true;  // scheduled crashes only, no random rates
    options.faults.crashes.push_back({"schooner", sim::Seconds(6), sim::Seconds(18)});
    options.faults.crashes.push_back({"schooner", sim::Seconds(30), sim::Seconds(42)});
    World world(options);
    const std::string padded = core::WithPadding(core::CpuHogProgramSource(),
                                                 /*extra_text_instructions=*/6000,
                                                 /*extra_data_bytes=*/50000);
    for (const auto& host : world.cluster().hosts()) {
      core::InstallProgram(*host, "/bin/bighog", padded);
    }
    for (int i = 0; i < kJobs; ++i) {
      world.StartVm("brick", "/bin/bighog", {"bighog", "50000000"});
    }
    net::Network* net = &world.cluster().network();
    auto stats = std::make_shared<apps::LoadBalancerStats>();
    RunSystem(world, "brick", [net, stats](SyscallApi& api) {
      apps::LoadBalancerOptions lb;
      lb.poll_interval = sim::Seconds(2);
      lb.min_age = sim::Seconds(1);
      lb.max_rounds = 12;
      lb.policy = PlacementPolicy::kFaultAware;
      lb.migrate = core::MigrateOptions::Robust();
      lb.use_index = true;
      lb.index_ttl = sim::Seconds(4);
      lb.batch_per_round = 2;
      *stats = apps::RunLoadBalancer(api, *net, lb);
      return 0;
    });
    world.cluster().RunUntil([&world] { return !world.host("schooner").down(); },
                             sim::Seconds(120));
    world.cluster().RunFor(sim::Seconds(2));
    int alive = 0;
    std::ostringstream fp;
    fp << stats->decisions << "|m=" << stats->migrations
       << ",f=" << stats->failed_migrations << ",fb=" << stats->fallback_restarts
       << ",refresh=" << stats->index_refreshes;
    for (const auto& host : world.cluster().hosts()) {
      int n = 0;
      for (kernel::Proc* p : host->ListProcs()) {
        if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++n;
      }
      alive += n;
      fp << "|" << host->hostname() << "=" << n;
    }
    fp << "|t=" << world.cluster().clock().now();
    *fingerprint = fp.str();
    EXPECT_EQ(stats->attempts_to_down, 0);
    EXPECT_EQ(stats->attempts_to_unreachable, 0);
    return alive;
  };
  std::string first, second;
  EXPECT_EQ(scenario(&first), kJobs);   // nothing lost
  EXPECT_EQ(scenario(&second), kJobs);
  EXPECT_EQ(first, second);  // bit-identical replay with the index on
}

// The same crash schedule with the event-driven balancer: rounds fire on
// sampler edges, migrate deltas, and fault records instead of a poll timer.
// This schedule bisects one migration — the 30s crash lands between the
// transactional dump (which kills the origin) and the restart — so the job
// survives only as an orphaned dump set on the crashed host. Conservation is
// asserted end-to-end: after the heal and the reaper's grace period, one
// reaper pass must revive exactly that job, and the whole run (decisions,
// wakeups, revival, final placement) must replay bit-identically.
TEST(ClusterIndex, ChaosSoakEventDrivenConservesAndReplays) {
  constexpr int kJobs = 5;
  auto scenario = [kJobs](std::string* fingerprint) {
    WorldOptions options;
    options.num_hosts = 3;
    options.daemons = true;
    options.metrics = true;
    options.sample_period = sim::Millis(500);  // the wakeup source
    options.faults.enabled = true;
    options.faults.crashes.push_back({"schooner", sim::Seconds(6), sim::Seconds(18)});
    options.faults.crashes.push_back({"schooner", sim::Seconds(30), sim::Seconds(42)});
    World world(options);
    const std::string padded = core::WithPadding(core::CpuHogProgramSource(),
                                                 /*extra_text_instructions=*/6000,
                                                 /*extra_data_bytes=*/50000);
    for (const auto& host : world.cluster().hosts()) {
      core::InstallProgram(*host, "/bin/bighog", padded);
    }
    for (int i = 0; i < kJobs; ++i) {
      // Long enough that no job completes inside the 60s balancer budget —
      // conservation counts live processes, so none may finish legitimately.
      world.StartVm("brick", "/bin/bighog", {"bighog", "500000000"});
    }
    net::Network* net = &world.cluster().network();
    auto stats = std::make_shared<apps::LoadBalancerStats>();
    RunSystem(world, "brick", [net, stats](SyscallApi& api) {
      apps::LoadBalancerOptions lb;
      lb.poll_interval = sim::Seconds(2);
      lb.min_age = sim::Seconds(1);
      lb.max_rounds = 12;
      lb.policy = PlacementPolicy::kFaultAware;
      lb.migrate = core::MigrateOptions::Robust();
      lb.use_index = true;
      lb.index_ttl = sim::Seconds(4);
      lb.batch_per_round = 2;
      lb.event_driven = true;
      lb.max_idle = sim::Seconds(20);
      lb.run_for = sim::Seconds(60);
      *stats = apps::RunLoadBalancer(api, *net, lb);
      return 0;
    });
    world.cluster().RunUntil([&world] { return !world.host("schooner").down(); },
                             sim::Seconds(120));
    // Let the orphaned set age past the reaper's grace period — the paused
    // dumpproc resumes at the 42s heal and commits its ready marker then —
    // and settle it with one reaper pass.
    world.cluster().RunFor(sim::Seconds(65));
    auto reaped = std::make_shared<apps::ReaperReport>();
    RunSystem(world, "brador", [net, reaped](SyscallApi& api) {
      *reaped = apps::ReapOrphans(api, *net);
      return 0;
    });
    world.cluster().RunFor(sim::Seconds(2));
    EXPECT_EQ(reaped->revived.size(), 1u);  // the bisected migration's job
    int alive = 0;
    std::ostringstream fp;
    fp << stats->decisions << "|m=" << stats->migrations
       << ",f=" << stats->failed_migrations << ",fb=" << stats->fallback_restarts
       << ",rounds=" << stats->rounds << ",ev=" << stats->event_wakeups
       << ",hb=" << stats->heartbeats << "|reap=" << reaped->log;
    for (const auto& host : world.cluster().hosts()) {
      int n = 0;
      for (kernel::Proc* p : host->ListProcs()) {
        if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++n;
      }
      alive += n;
      fp << "|" << host->hostname() << "=" << n;
    }
    fp << "|t=" << world.cluster().clock().now();
    *fingerprint = fp.str();
    EXPECT_EQ(stats->attempts_to_down, 0);
    EXPECT_EQ(stats->attempts_to_unreachable, 0);
    EXPECT_GT(stats->migrations, 0);  // the wakeups actually drove rebalancing
    return alive;
  };
  std::string first, second;
  EXPECT_EQ(scenario(&first), kJobs) << first;
  EXPECT_EQ(scenario(&second), kJobs) << second;
  EXPECT_EQ(first, second);
}

// --- Stacked indexes and the FaultHistory listener chain ---

// Two coordinators' indexes chain onto the one FaultHistory listener slot.
// Destroying them in *either* order must keep the chain safe: the pre-existing
// listener underneath keeps firing, the survivor keeps folding scores in, and
// no closure over a destroyed index is ever invoked (the pre-fix destructor
// unconditionally re-installed its saved chain, so destroying the older index
// last resurrected a callback capturing the already-destroyed newer one —
// a use-after-free ASan catches).
TEST(ClusterIndex, StackedIndexesDestroyInEitherOrderWithoutCorruptingChain) {
  for (const bool newer_first : {true, false}) {
    WorldOptions options;
    options.num_hosts = 3;
    World world(options);
    net::Network* net = &world.cluster().network();
    sim::FaultHistory* history = net->fault_history();
    ASSERT_NE(history, nullptr);
    int base_calls = 0;
    history->set_listener([&base_calls](std::string_view) { ++base_calls; });

    auto older = std::make_unique<ClusterIndex>(net, "brick");
    auto newer = std::make_unique<ClusterIndex>(net, "schooner");
    history->RecordFailure("brador", Errno::kHostUnreach);
    EXPECT_EQ(base_calls, 1);  // the chain reaches the base listener
    EXPECT_GT(older->Find("brador")->fault_score, 0.0);
    EXPECT_GT(newer->Find("brador")->fault_score, 0.0);

    ClusterIndex* survivor;
    if (newer_first) {
      newer.reset();
      survivor = older.get();
    } else {
      older.reset();
      survivor = newer.get();
    }
    const double before = survivor->Find("brador")->fault_score;
    history->RecordFailure("brador", Errno::kHostUnreach);
    EXPECT_EQ(base_calls, 2) << (newer_first ? "newer" : "older")
                             << " destroyed first broke the base listener";
    EXPECT_GT(survivor->Find("brador")->fault_score, before);

    older.reset();
    newer.reset();
    history->RecordFailure("brador", Errno::kHostUnreach);
    EXPECT_EQ(base_calls, 3);  // both gone: the base listener alone remains
  }
}

// --- Armed but idle: event-driven must change nothing ---

struct ArmedIdleOutcome {
  std::string decisions;
  int migrations = 0;
  int rounds = 0;
  int event_wakeups = 0;
  int heartbeats = 0;
  sim::Nanos drained_at = 0;   // the workload's own timeline
  sim::Nanos final_clock = 0;  // after the balancer exits
  int64_t surveys = 0;
};

// Jobs on every host but the coordinator's, loads balanced below the
// threshold: the balancer (either mode) must watch without ever acting.
ArmedIdleOutcome RunArmedIdle(bool event_driven) {
  WorldOptions options;
  options.num_hosts = 4;
  options.daemons = true;
  options.metrics = true;
  options.sample_period = sim::Millis(500);
  World world(options);
  for (const char* host : {"schooner", "brador", "classic"}) {
    world.StartVm(host, "/bin/hog", {"hog", "20000000"});
  }
  world.cluster().RunFor(sim::Seconds(2));
  net::Network* net = &world.cluster().network();
  auto stats = std::make_shared<apps::LoadBalancerStats>();
  kernel::SpawnOptions opts;  // root
  opts.tty = world.console("brick");
  opts.cwd = "/";
  const int32_t balancer = world.host("brick").SpawnNative(
      "balancer",
      [net, event_driven, stats](SyscallApi& api) {
        apps::LoadBalancerOptions lb;
        lb.poll_interval = sim::Seconds(2);
        lb.min_age = sim::Seconds(1);
        lb.max_rounds = 100;
        lb.use_index = true;
        lb.index_ttl = sim::Seconds(600);
        lb.event_driven = event_driven;
        lb.max_idle = sim::Seconds(30);
        *stats = apps::RunLoadBalancer(api, *net, lb);
        return 0;
      },
      opts);
  ArmedIdleOutcome out;
  world.cluster().RunUntil(
      [&world] {
        for (const auto& host : world.cluster().hosts()) {
          for (kernel::Proc* p : host->ListProcs()) {
            if (p->kind == kernel::ProcKind::kVm && p->Alive()) return false;
          }
        }
        return true;
      },
      sim::Seconds(300));
  out.drained_at = world.cluster().clock().now();
  world.RunUntilExited("brick", balancer, sim::Seconds(300));
  out.decisions = stats->decisions;
  out.migrations = stats->migrations;
  out.rounds = stats->rounds;
  out.event_wakeups = stats->event_wakeups;
  out.heartbeats = stats->heartbeats;
  out.final_clock = world.cluster().clock().now();
  out.surveys = SurveyMessages(world);
  return out;
}

TEST(ClusterIndex, ArmedButIdleEventBalancerMatchesPollingAndReplays) {
  const ArmedIdleOutcome polling = RunArmedIdle(false);
  const ArmedIdleOutcome event = RunArmedIdle(true);

  // Neither mode acts: empty decision logs, zero migrations.
  EXPECT_EQ(polling.decisions, "");
  EXPECT_EQ(event.decisions, "");
  EXPECT_EQ(polling.migrations, 0);
  EXPECT_EQ(event.migrations, 0);

  // The workload's timeline is bit-identical: an armed-but-idle event balancer
  // perturbs the jobs exactly as much as the idle poller does — not at all.
  EXPECT_EQ(event.drained_at, polling.drained_at);

  // Both modes pay only the one-time index build (4 hosts); no idle surveys.
  EXPECT_EQ(polling.surveys, 4);
  EXPECT_EQ(event.surveys, 4);

  // The event balancer wakes for heartbeats (and the final drain observation),
  // not every poll_interval: strictly fewer rounds over the same window.
  EXPECT_LT(event.rounds, polling.rounds);
  EXPECT_GT(event.heartbeats, 0);  // the liveness pass on a silent cluster

  // And the whole event-driven run replays bit-identically.
  const ArmedIdleOutcome replay = RunArmedIdle(true);
  EXPECT_EQ(replay.decisions, event.decisions);
  EXPECT_EQ(replay.rounds, event.rounds);
  EXPECT_EQ(replay.event_wakeups, event.event_wakeups);
  EXPECT_EQ(replay.heartbeats, event.heartbeats);
  EXPECT_EQ(replay.drained_at, event.drained_at);
  EXPECT_EQ(replay.final_clock, event.final_clock);
  EXPECT_EQ(replay.surveys, event.surveys);
}

// --- Batch placement lookahead ---

TEST(ClusterIndex, PlaceBatchSpreadsWithLookahead) {
  WorldOptions options;
  options.num_hosts = 4;
  World world(options);
  std::vector<int32_t> pids;
  for (int i = 0; i < 3; ++i) {
    pids.push_back(world.StartVm("brick", "/bin/hog", {"hog", "50000000"}));
  }
  world.cluster().RunFor(sim::Millis(100));

  net::Network* net = &world.cluster().network();
  const PlacementEngine engine(net, PlacementPolicy::kLoadOnly);
  PlacementQuery query;
  query.from_host = "brick";
  // Every other host is idle; without lookahead all three would stack onto
  // schooner. The working-load bumps spread them, one per host.
  const std::vector<std::string> scan = engine.PlaceBatch(query, pids);
  ASSERT_EQ(scan.size(), 3u);
  EXPECT_EQ(scan[0], "schooner");
  EXPECT_EQ(scan[1], "brador");
  EXPECT_EQ(scan[2], "classic");

  // The index view places the batch identically.
  ClusterIndex index(net, "brick");
  index.Refresh(world.cluster().clock().now());
  query.index = &index;
  EXPECT_EQ(engine.PlaceBatch(query, pids), scan);
}

// --- CPU-weighted victim selection ---

TEST(ClusterIndex, PickVictimsByCpuPrefersHottestProcess) {
  WorldOptions options;
  options.num_hosts = 1;
  World world(options);
  const int32_t older = world.StartVm("brick", "/bin/hog", {"hog", "500000000"});
  world.cluster().RunFor(sim::Seconds(2));
  const int32_t younger = world.StartVm("brick", "/bin/hog", {"hog", "500000000"});
  world.cluster().RunFor(sim::Seconds(2));
  ASSERT_GT(older, 0);
  ASSERT_GT(younger, 0);

  kernel::Kernel& brick = world.host("brick");
  const sim::Nanos now = world.cluster().clock().now();
  // Default: oldest first — the paper's "has been running for a while" proxy.
  const auto by_age = apps::PickVictims(brick, now, sim::Seconds(1), false, 2);
  ASSERT_EQ(by_age.size(), 2u);
  EXPECT_EQ(by_age[0], older);
  EXPECT_EQ(by_age[1], younger);

  // Hand the younger process a larger accumulated CPU bill: by_cpu must rank
  // it first even though it started later.
  kernel::Proc* hot = brick.FindProc(younger);
  ASSERT_NE(hot, nullptr);
  hot->utime += sim::Seconds(30);
  const auto by_cpu = apps::PickVictims(brick, now, sim::Seconds(1), true, 2);
  ASSERT_EQ(by_cpu.size(), 2u);
  EXPECT_EQ(by_cpu[0], younger);
  EXPECT_EQ(by_cpu[1], older);
}

// --- Night shift picks its day host through the engine ---

TEST(ClusterIndex, NightShiftPicksDayHostThroughEngine) {
  WorldOptions options;
  options.num_hosts = 3;
  options.daemons = true;
  World world(options);
  // Four batch jobs (uid 999) submitted on brick — making brick the *most*
  // occupied host, so the engine's occupancy pick must land elsewhere.
  kernel::Kernel& brick = world.host("brick");
  for (int i = 0; i < 4; ++i) {
    kernel::SpawnOptions opts;
    opts.creds = {999, 99, 999, 99};
    opts.tty = nullptr;
    opts.cwd = "/tmp";
    const Result<int32_t> pid = brick.SpawnVm("/bin/hog", {"hog", "40000000"}, opts);
    ASSERT_TRUE(pid.ok());
  }
  apps::NightShiftStats stats;
  net::Network* net = &world.cluster().network();
  RunSystem(world, "brick", [net, &stats](SyscallApi& api) {
    apps::NightShiftOptions options;
    // day_host left empty: the engine chooses the least-occupied live host.
    options.night_length = sim::Seconds(30);
    options.nights = 1;
    stats = apps::RunNightShift(api, *net, options);
    return 0;
  });
  EXPECT_EQ(stats.day_host, "schooner");  // idle, first in network order
  EXPECT_EQ(stats.nights_run, 1);
  // Dawn consolidated the strays onto the chosen day machine.
  EXPECT_EQ(stats.gather_migrations, 4);
  EXPECT_EQ(stats.failed_gather, 0);
  EXPECT_EQ(apps::BatchJobsOn(world.host("schooner"), 999).size(), 4u);
  EXPECT_TRUE(apps::BatchJobsOn(world.host("brick"), 999).empty());
}

}  // namespace
}  // namespace pmig
