// rest_proc() and the restart application: error paths, fd-table reconstruction,
// terminal-mode restoration, credential rules.

#include <gtest/gtest.h>

#include "src/core/dump_format.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using core::DumpPaths;
using kernel::SyscallApi;
using test::kUserUid;
using test::World;

// Dumps a blocked counter on brick (via raw SIGDUMP, no dumpproc rewriting) and
// returns its pid. With raw=false runs dumpproc so the files are rewritten.
int32_t DumpCounter(World& world, bool run_dumpproc, int lines = 1,
                    const char* program = "/bin/counter") {
  const int32_t pid = world.StartVm("brick", program);
  EXPECT_TRUE(world.RunUntilBlocked("brick", pid));
  for (int i = 0; i < lines; ++i) {
    world.console("brick")->Type("x\n");
    EXPECT_TRUE(world.RunUntilBlocked("brick", pid));
  }
  if (run_dumpproc) {
    const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
    EXPECT_TRUE(world.RunUntilExited("brick", dp));
    EXPECT_EQ(world.ExitInfoOf("brick", dp).exit_code, 0);
  } else {
    EXPECT_TRUE(world.host("brick").PostSignal(pid, vm::abi::kSigDump, nullptr).ok());
  }
  EXPECT_TRUE(world.RunUntilExited("brick", pid));
  return pid;
}

// Runs a native entry as `uid` on brick and reports the rest_proc errno it saw.
Errno BareRestProc(World& world, const std::string& aout, const std::string& stack,
                   int32_t uid = kUserUid) {
  kernel::Kernel& k = world.host("brick");
  auto err = std::make_shared<Errno>(Errno::kOk);
  kernel::SpawnOptions opts;
  opts.creds = {uid, 10, uid, 10};
  opts.tty = world.console("brick");
  opts.cwd = "/u/user";
  const int32_t pid = k.SpawnNative("bare",
                                    [err, aout, stack](SyscallApi& api) {
                                      *err = api.RestProc(aout, stack).error();
                                      return 0;
                                    },
                                    opts);
  world.RunUntilExited("brick", pid);
  return *err;
}

TEST(RestProc, FailsOnMissingFiles) {
  World world;
  EXPECT_EQ(BareRestProc(world, "/usr/tmp/a.out1", "/usr/tmp/stack1"), Errno::kNoEnt);
}

TEST(RestProc, FailsOnBadStackMagic) {
  World world;
  const int32_t pid = DumpCounter(world, false);
  const DumpPaths paths = DumpPaths::For(pid);
  world.host("brick").vfs().SetupCreateFile(paths.stack, "garbage", kUserUid, 0600);
  EXPECT_EQ(BareRestProc(world, paths.aout, paths.stack), Errno::kNoExec);
}

TEST(RestProc, FailsOnBadExecutable) {
  World world;
  const int32_t pid = DumpCounter(world, false);
  const DumpPaths paths = DumpPaths::For(pid);
  world.host("brick").vfs().SetupCreateFile(paths.aout, "garbage", kUserUid, 0600);
  EXPECT_EQ(BareRestProc(world, paths.aout, paths.stack), Errno::kNoExec);
}

TEST(RestProc, FailsForNonOwner) {
  // The dump files are 0600: another (non-root) user cannot read, hence cannot
  // restart — "only the superuser or the owner of the original process".
  World world;
  const int32_t pid = DumpCounter(world, false);
  const DumpPaths paths = DumpPaths::For(pid);
  EXPECT_EQ(BareRestProc(world, paths.aout, paths.stack, /*uid=*/222), Errno::kAcces);
}

TEST(RestProc, SuperuserMayRestartAnyones) {
  World world;
  const int32_t pid = DumpCounter(world, false);
  const DumpPaths paths = DumpPaths::For(pid);
  kernel::Kernel& k = world.host("brick");
  auto err = std::make_shared<Errno>(Errno::kOk);
  kernel::SpawnOptions opts;  // root
  opts.tty = world.console("brick");
  opts.cwd = "/u/user";
  const int32_t rp = k.SpawnNative("as-root",
                                   [err, paths](SyscallApi& api) {
                                     *err = api.RestProc(paths.aout, paths.stack).error();
                                     return 1;  // only on failure
                                   },
                                   opts);
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    const kernel::Proc* p = k.FindProc(rp);
    return p != nullptr && p->kind == kernel::ProcKind::kVm;
  }));
  EXPECT_EQ(*err, Errno::kOk);
  // The restored process runs under the *dumped* credentials, not root.
  kernel::Proc* p = k.FindProc(rp);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->creds.uid, kUserUid);
  EXPECT_EQ(p->creds.euid, kUserUid);
}

TEST(RestProc, CallerUntouchedAfterFailure) {
  // "If the system call does return ... something was wrong" — and the caller
  // must be able to continue as a normal process.
  World world;
  kernel::Kernel& k = world.host("brick");
  auto after = std::make_shared<bool>(false);
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.tty = world.console("brick");
  const int32_t pid = k.SpawnNative("survivor",
                                    [after](SyscallApi& api) {
                                      const Status st = api.RestProc("/nope", "/nope");
                                      if (st.ok()) return 1;
                                      // Still able to make syscalls afterwards:
                                      *after = api.Write(1, "alive\n").ok();
                                      return 0;
                                    },
                                    opts);
  world.RunUntilExited("brick", pid);
  EXPECT_TRUE(*after);
  EXPECT_EQ(world.ExitInfoOf("brick", pid).exit_code, 0);
}

TEST(RestProc, RestoresSignalDispositions) {
  World world;
  const int32_t pid = DumpCounter(world, true, 0, "/bin/handler");
  const int32_t rs = world.StartTool("brick", "restart", {"-p", std::to_string(pid)},
                                     kUserUid, world.console("brick"));
  kernel::Kernel& k = world.host("brick");
  ASSERT_TRUE(world.RunUntilBlocked("brick", rs));
  kernel::Proc* p = k.FindProc(rs);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->sig_dispositions[vm::abi::kSigUsr1].action,
            kernel::SignalDisposition::Action::kCatch);
  EXPECT_EQ(p->sig_dispositions[vm::abi::kSigInt].action,
            kernel::SignalDisposition::Action::kIgnore);
  // And the handler still works post-migration.
  ASSERT_TRUE(k.PostSignal(rs, vm::abi::kSigUsr1, nullptr).ok());
  world.cluster().RunFor(sim::Millis(100));
  world.console("brick")->ClearOutput();
  world.console("brick")->Type("\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("brick")->PlainOutput().find("1\n") != std::string::npos;
  }));
}

TEST(Restart, ReopensFileWithModeAndOffset) {
  World world;
  const int32_t pid = DumpCounter(world, true, 2);
  const int32_t rs = world.StartTool("brick", "restart", {"-p", std::to_string(pid)},
                                     kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilBlocked("brick", rs));
  kernel::Proc* p = world.host("brick").FindProc(rs);
  ASSERT_NE(p, nullptr);
  const kernel::OpenFilePtr& out = p->fds[3];
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->kind, kernel::FileKind::kInode);
  EXPECT_TRUE((out->flags & vm::abi::kOAppend) != 0);
  EXPECT_FALSE(out->readable());
  EXPECT_EQ(out->offset, 4);  // "x\n" twice
}

TEST(Restart, MissingFileBecomesDevNull) {
  World world;
  const int32_t pid = DumpCounter(world, true, 1);
  // Delete the output file between dump and restart.
  kernel::Kernel& k = world.host("brick");
  auto root = k.vfs().RootState();
  auto dir = k.vfs().Resolve(root, "/u/user", vfs::Follow::kAll, nullptr);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(k.fs().Unlink(dir->inode, "counter.out").ok());

  const int32_t rs = world.StartTool("brick", "restart", {"-p", std::to_string(pid)},
                                     kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilBlocked("brick", rs));
  kernel::Proc* p = k.FindProc(rs);
  ASSERT_NE(p, nullptr);
  const kernel::OpenFilePtr& slot3 = p->fds[3];
  ASSERT_NE(slot3, nullptr);
  ASSERT_EQ(slot3->kind, kernel::FileKind::kInode);
  EXPECT_EQ(slot3->inode->device != nullptr &&
                std::string(slot3->inode->device->DeviceName()) == "null",
            true);
  // The program keeps running; its appends just vanish.
  world.console("brick")->Type("gone\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", rs));
  EXPECT_FALSE(world.FileExists("brick", "/u/user/counter.out"));
}

TEST(Restart, UnusedSlotsStayClosed) {
  World world;
  const int32_t pid = DumpCounter(world, true);
  const int32_t rs = world.StartTool("brick", "restart", {"-p", std::to_string(pid)},
                                     kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilBlocked("brick", rs));
  kernel::Proc* p = world.host("brick").FindProc(rs);
  ASSERT_NE(p, nullptr);
  // Slots 4.. were unused in the counter: the placeholders must be closed again.
  for (int fd = 4; fd < kernel::kNoFile; ++fd) {
    EXPECT_EQ(p->fds[static_cast<size_t>(fd)], nullptr) << fd;
  }
}

TEST(Restart, RestoresTtyModes) {
  World world;
  // The editor puts its terminal in raw mode.
  const int32_t pid = world.StartVm("brick", "/bin/editor");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    const kernel::Proc* p = world.host("brick").FindProc(pid);
    return p != nullptr && p->state == kernel::ProcState::kBlocked;
  }));
  ASSERT_TRUE(world.console("brick")->raw());
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  ASSERT_TRUE(world.RunUntilExited("brick", pid));

  // Restart on schooner's console (cooked by default): restart must flip it raw.
  ASSERT_FALSE(world.console("schooner")->raw());
  const int32_t rs = world.StartTool("schooner", "restart",
                                     {"-p", std::to_string(pid), "-h", "brick"},
                                     kUserUid, world.console("schooner"));
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    const kernel::Proc* p = world.host("schooner").FindProc(rs);
    return p != nullptr && p->kind == kernel::ProcKind::kVm &&
           p->state == kernel::ProcState::kBlocked;
  }));
  EXPECT_TRUE(world.console("schooner")->raw());
  // Keystrokes reach the migrated editor character-at-a-time.
  world.console("schooner")->Type("z");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("schooner")->PlainOutput().find("[z]") != std::string::npos;
  }));
}

TEST(Restart, FailsCleanlyWithoutDumpFiles) {
  World world;
  const int32_t rs = world.StartTool("brick", "restart", {"-p", "424242"});
  ASSERT_TRUE(world.RunUntilExited("brick", rs));
  EXPECT_NE(world.ExitInfoOf("brick", rs).exit_code, 0);
}

TEST(Restart, NonOwnerCannotRestart) {
  World world;
  const int32_t pid = DumpCounter(world, true);
  // uid 222 tries to restart uid 100's process.
  const int32_t rs = world.StartTool("brick", "restart", {"-p", std::to_string(pid)},
                                     /*uid=*/222, world.console("brick"));
  ASSERT_TRUE(world.RunUntilExited("brick", rs));
  EXPECT_NE(world.ExitInfoOf("brick", rs).exit_code, 0);
}

TEST(Restart, DeepStackSurvivesMigration) {
  World world;
  // deepstack recurses 40 frames then prompts; dump there and restart on
  // schooner; the recursion must unwind correctly afterwards.
  const int32_t pid = world.StartVm("brick", "/bin/deepstack");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  EXPECT_NE(world.console("brick")->PlainOutput().find("deep>"), std::string::npos);
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  ASSERT_TRUE(world.RunUntilExited("brick", pid));

  const int32_t rs = world.StartTool("schooner", "restart",
                                     {"-p", std::to_string(pid), "-h", "brick"},
                                     kUserUid, world.console("schooner"));
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    const kernel::Proc* p = world.host("schooner").FindProc(rs);
    return p != nullptr && p->kind == kernel::ProcKind::kVm &&
           p->state == kernel::ProcState::kBlocked;
  }));
  world.console("schooner")->Type("up\n");
  ASSERT_TRUE(world.RunUntilExited("schooner", rs));
  // sum = 40+39+...+1 = 820.
  EXPECT_NE(world.console("schooner")->PlainOutput().find("sum=820"), std::string::npos);
}

}  // namespace
}  // namespace pmig
