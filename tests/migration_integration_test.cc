// End-to-end migration: the paper's Section 4.2 user interaction, in full.
//
// A counter program runs on brick; it is dumped with dumpproc, restarted on
// schooner with restart (and, in other tests, moved in one step with migrate).
// The register, static, and stack counters must continue from where they stopped;
// the output file must keep appending at the right offset; the pid changes.

#include <gtest/gtest.h>

#include "src/core/dump_format.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using test::World;

TEST(MigrationIntegration, CounterSurvivesDumpprocRestartAcrossHosts) {
  World world;

  // Run the counter on brick; feed it one line.
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  EXPECT_NE(world.console("brick")->PlainOutput().find("r=1 s=1 k=1"), std::string::npos);

  world.console("brick")->Type("hello\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("brick")->PlainOutput().find("r=2 s=2 k=2") != std::string::npos;
  }));
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  // dumpproc -p <pid> on brick.
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  ASSERT_GT(dp, 0);
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  EXPECT_EQ(world.ExitInfoOf("brick", dp).exit_code, 0);

  // The counter is gone, via a migration dump, and the three files exist.
  ASSERT_TRUE(world.RunUntilExited("brick", pid));
  EXPECT_TRUE(world.ExitInfoOf("brick", pid).migration_dumped);
  const core::DumpPaths paths = core::DumpPaths::For(pid);
  EXPECT_TRUE(world.FileExists("brick", paths.aout));
  EXPECT_TRUE(world.FileExists("brick", paths.files));
  EXPECT_TRUE(world.FileExists("brick", paths.stack));

  // restart -p <pid> -h brick, typed on schooner's console.
  const int32_t rs = world.StartTool("schooner", "restart",
                                     {"-p", std::to_string(pid), "-h", "brick"},
                                     test::kUserUid, world.console("schooner"));
  ASSERT_GT(rs, 0);
  // The restart process itself becomes the migrated program and blocks at the
  // re-executed read().
  ASSERT_TRUE(world.RunUntilBlocked("schooner", rs));
  kernel::Proc* migrated = world.host("schooner").FindProc(rs);
  ASSERT_NE(migrated, nullptr);
  EXPECT_EQ(migrated->kind, kernel::ProcKind::kVm);
  EXPECT_TRUE(migrated->migrated);
  EXPECT_EQ(migrated->old_pid, pid);
  EXPECT_EQ(migrated->old_host, "brick");
  EXPECT_NE(migrated->pid, pid);  // restarted under a new pid

  // Feed it another line on schooner: all three counters continue at 3.
  world.console("schooner")->Type("world\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("schooner")->PlainOutput().find("r=3 s=3 k=3") != std::string::npos;
  }));

  // The output file (on brick's disk, reached over NFS) kept appending.
  EXPECT_EQ(world.FileContents("brick", "/u/user/counter.out"), "hello\nworld\n");
}

TEST(MigrationIntegration, MigrateCommandMovesProcessInOneStep) {
  World world;

  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("one\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  // migrate -p pid -f brick -t schooner, typed on schooner (the best option for
  // preserving terminal modes, per Section 4.2).
  const int32_t mig = world.StartTool("schooner", "migrate",
                                      {"-p", std::to_string(pid), "-f", "brick", "-t",
                                       "schooner"},
                                      test::kUserUid, world.console("schooner"));
  ASSERT_TRUE(world.RunUntilExited("schooner", mig, sim::Seconds(300)));
  EXPECT_EQ(world.ExitInfoOf("schooner", mig).exit_code, 0);

  // The migrated process lives on schooner, attached to schooner's console.
  const int32_t new_pid = world.FindPidByCommand("schooner", "migrated");
  ASSERT_GT(new_pid, 0);
  world.console("schooner")->Type("two\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("schooner")->PlainOutput().find("r=3 s=3 k=3") != std::string::npos;
  }));
  EXPECT_EQ(world.FileContents("brick", "/u/user/counter.out"), "one\ntwo\n");
}

TEST(MigrationIntegration, MigrateLocalToLocalRestartsOnSameHost) {
  World world;

  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("aa\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  const int32_t mig =
      world.StartTool("brick", "migrate", {"-p", std::to_string(pid)}, test::kUserUid,
                      world.console("brick"));
  ASSERT_TRUE(world.RunUntilExited("brick", mig, sim::Seconds(300)));
  EXPECT_EQ(world.ExitInfoOf("brick", mig).exit_code, 0);

  const int32_t new_pid = world.FindPidByCommand("brick", "migrated");
  ASSERT_GT(new_pid, 0);
  EXPECT_NE(new_pid, pid);
  world.console("brick")->Type("bb\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("brick")->PlainOutput().find("r=3 s=3 k=3") != std::string::npos;
  }));
  EXPECT_EQ(world.FileContents("brick", "/u/user/counter.out"), "aa\nbb\n");
}

}  // namespace
}  // namespace pmig
