// Cluster-level behaviour: boot, the /n namespace, time driving, determinism.

#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace pmig {
namespace {

using test::kUserUid;
using test::World;
using test::WorldOptions;

TEST(Cluster, BootsRequestedHosts) {
  WorldOptions options;
  options.num_hosts = 3;
  World world(options);
  EXPECT_EQ(world.cluster().hosts().size(), 3u);
  EXPECT_EQ(world.host("brick").hostname(), "brick");
  EXPECT_EQ(world.host("schooner").hostname(), "schooner");
  EXPECT_EQ(world.host("brador").hostname(), "brador");
}

TEST(Cluster, EveryHostSeesEveryRootUnderSlashN) {
  WorldOptions options;
  options.num_hosts = 3;
  World world(options);
  world.host("brador").vfs().SetupCreateFile("/etc/motd", "welcome to brador");
  for (const char* viewer : {"brick", "schooner", "brador"}) {
    EXPECT_EQ(world.FileContents(viewer, "/n/brador/etc/motd"), "welcome to brador")
        << viewer;
  }
}

TEST(Cluster, WritesThroughNfsAreVisibleEverywhere) {
  World world;
  world.host("brick").vfs().SetupCreateFile("/n/schooner/tmp/shared", "from brick");
  EXPECT_EQ(world.FileContents("schooner", "/tmp/shared"), "from brick");
}

TEST(Cluster, BootCreatesStandardDirectories) {
  World world;
  for (const char* path : {"/dev", "/usr/tmp", "/tmp", "/etc", "/bin", "/u", "/n"}) {
    EXPECT_TRUE(world.FileExists("brick", path)) << path;
  }
  EXPECT_TRUE(world.FileExists("brick", "/dev/null"));
  EXPECT_TRUE(world.FileExists("brick", "/dev/console"));
}

TEST(Cluster, RunForAdvancesVirtualTime) {
  World world;
  const sim::Nanos t0 = world.cluster().clock().now();
  world.cluster().RunFor(sim::Seconds(5));
  EXPECT_GE(world.cluster().clock().now() - t0, sim::Seconds(5));
}

TEST(Cluster, RunUntilIdleWithNoWorkIsImmediate) {
  World world;
  EXPECT_TRUE(world.cluster().RunUntilIdle(sim::Seconds(1)));
}

TEST(Cluster, RunUntilIdleWaitsForSleepers) {
  World world;
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const int32_t pid = world.host("brick").SpawnNative(
      "sleeper",
      [](kernel::SyscallApi& api) {
        api.Sleep(sim::Seconds(30));
        return 0;
      },
      opts);
  EXPECT_TRUE(world.cluster().RunUntilIdle(sim::Seconds(120)));
  kernel::Proc* sl = world.host("brick").FindAnyProc(pid);
  ASSERT_NE(sl, nullptr);
  EXPECT_FALSE(sl->Alive());
  // The idle skip must not have run the clock to the limit.
  EXPECT_LT(world.cluster().clock().now(), sim::Seconds(60));
}

TEST(Cluster, BlockedForeverDaemonCountsAsIdle) {
  WorldOptions options;
  options.daemons = true;
  World world(options);
  EXPECT_TRUE(world.cluster().RunUntilIdle(sim::Seconds(10)));
}

TEST(Cluster, DeterministicAcrossRuns) {
  auto run_once = [] {
    World world;
    const int32_t pid = world.StartVm("brick", "/bin/counter");
    world.RunUntilBlocked("brick", pid);
    world.console("brick")->Type("abc\n");
    world.RunUntilBlocked("brick", pid);
    kernel::Proc* p = world.host("brick").FindProc(pid);
    return std::make_tuple(world.cluster().clock().now(), world.cluster().TotalCpu(),
                           p->utime, p->stime,
                           world.console("brick")->PlainOutput());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Cluster, TotalCpuIsMonotonic) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/hog", {"hog", "50000"});
  (void)pid;
  const sim::Nanos c0 = world.cluster().TotalCpu();
  world.cluster().RunFor(sim::Millis(200));
  const sim::Nanos c1 = world.cluster().TotalCpu();
  world.cluster().RunFor(sim::Millis(200));
  const sim::Nanos c2 = world.cluster().TotalCpu();
  EXPECT_GT(c1, c0);
  EXPECT_GE(c2, c1);
}

TEST(Cluster, TraceRecordsMigrationEvents) {
  WorldOptions options;
  options.trace = true;
  World world(options);
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  ASSERT_TRUE(world.host("brick").PostSignal(pid, vm::abi::kSigDump, nullptr).ok());
  ASSERT_TRUE(world.RunUntilExited("brick", pid));
  EXPECT_GT(world.cluster().trace().CountMatching("SIGDUMP"), 0u);
  EXPECT_GT(world.cluster().trace().CountMatching("dump file"), 0u);
}

TEST(Cluster, HostsRunInParallelOnOneTimeline) {
  World world;
  const int32_t a = world.StartVm("brick", "/bin/hog", {"hog", "100000"});
  const int32_t b = world.StartVm("schooner", "/bin/hog", {"hog", "100000"});
  // Two machines crunch simultaneously: both finish in roughly the single-job
  // time, not twice it. 100k iterations ~ 2 instr each ~ 0.4s of CPU.
  ASSERT_TRUE(world.RunUntilExited("brick", a, sim::Seconds(2)));
  ASSERT_TRUE(world.RunUntilExited("schooner", b, sim::Seconds(2)));
  EXPECT_LT(world.cluster().clock().now(), sim::Seconds(1));
}

TEST(Cluster, PerHostKernelStats) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  EXPECT_GT(world.host("brick").stats().syscalls, 0);
  EXPECT_GT(world.host("brick").stats().procs_spawned, 0);
}

}  // namespace
}  // namespace pmig
