// The VM-side syscall ABI, exercised by real machine programs: every trap the
// dispatcher implements, including its error returns into r0.

#include <gtest/gtest.h>

#include "src/core/test_programs.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using test::kUserUid;
using test::World;

// Runs an assembly program on brick to completion; returns its exit code.
// The program is installed at /bin/t and started with no tty (batch).
int RunAsm(World& world, const std::string& source, bool with_tty = false,
           const std::string& cwd = "/u/user") {
  core::InstallProgram(world.host("brick"), "/bin/t", source);
  kernel::Kernel& k = world.host("brick");
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  if (with_tty) opts.tty = world.console("brick");
  opts.cwd = cwd;
  const Result<int32_t> pid = k.SpawnVm("/bin/t", {}, opts);
  EXPECT_TRUE(pid.ok());
  if (!pid.ok()) return -1;
  EXPECT_TRUE(world.RunUntilExited("brick", *pid, sim::Seconds(120)));
  return world.ExitInfoOf("brick", *pid).exit_code;
}

// Convention in these programs: exit(0) = success, exit(N) = step N failed.

TEST(VmSyscall, TimeAdvances) {
  World world;
  world.cluster().RunFor(sim::Seconds(3));
  const int code = RunAsm(world, R"(
start:  sys  SYS_time           ; r0 = seconds since boot
        movi r1, 3
        blt  r0, r1, bad
        movi r0, 0
        sys  SYS_exit
bad:    movi r0, 1
        sys  SYS_exit
)");
  EXPECT_EQ(code, 0);
}

TEST(VmSyscall, GetUidAndPpid) {
  World world;
  const int code = RunAsm(world, R"(
start:  sys  SYS_getuid
        movi r1, 100
        bne  r0, r1, bad1
        sys  SYS_getppid        ; spawned by the kernel: ppid 0
        movi r1, 0
        bne  r0, r1, bad2
        movi r0, 0
        sys  SYS_exit
bad1:   movi r0, 1
        sys  SYS_exit
bad2:   movi r0, 2
        sys  SYS_exit
)");
  EXPECT_EQ(code, 0);
}

TEST(VmSyscall, MkdirChdirGetcwdRmdir) {
  World world;
  const int code = RunAsm(world, R"(
start:  movi r0, dname
        movi r1, 493            ; 0755
        sys  SYS_mkdir
        movi r1, 0
        bne  r0, r1, bad1
        movi r0, dname
        sys  SYS_chdir
        movi r1, 0
        bne  r0, r1, bad2
        movi r0, cwdbuf
        movi r1, 64
        sys  SYS_getcwd
        movi r1, 0
        bne  r0, r1, bad3
        ; verify cwd ends with "subdir": check first byte is '/'
        movi r3, cwdbuf
        ldb  r4, r3, 0
        movi r5, 47             ; '/'
        bne  r4, r5, bad4
        ; back out and remove
        movi r0, dotdot
        sys  SYS_chdir
        movi r0, dname
        sys  SYS_rmdir
        movi r1, 0
        bne  r0, r1, bad5
        movi r0, 0
        sys  SYS_exit
bad1:   movi r0, 1
        sys  SYS_exit
bad2:   movi r0, 2
        sys  SYS_exit
bad3:   movi r0, 3
        sys  SYS_exit
bad4:   movi r0, 4
        sys  SYS_exit
bad5:   movi r0, 5
        sys  SYS_exit
        .data
dname:  .asciiz "subdir"
dotdot: .asciiz ".."
cwdbuf: .space 64
)");
  EXPECT_EQ(code, 0);
}

TEST(VmSyscall, RenameAndStat) {
  World world;
  const int code = RunAsm(world, R"(
start:  movi r0, oldn
        movi r1, 420
        sys  SYS_creat
        movi r7, 0
        blt  r0, r7, bad1
        mov  r6, r0
        mov  r0, r6
        movi r1, msg
        movi r2, 5
        sys  SYS_write
        mov  r0, r6
        sys  SYS_close
        movi r0, oldn
        movi r1, newn
        sys  SYS_rename
        movi r1, 0
        bne  r0, r1, bad2
        ; stat the new name: size must be 5, type regular (0)
        movi r0, newn
        movi r1, stbuf
        sys  SYS_stat
        movi r1, 0
        bne  r0, r1, bad3
        movi r3, stbuf
        ld   r4, r3, 0          ; type
        movi r5, 0
        bne  r4, r5, bad4
        ld   r4, r3, 8          ; size
        movi r5, 5
        bne  r4, r5, bad5
        ; the old name is gone
        movi r0, oldn
        movi r1, stbuf
        sys  SYS_stat
        movi r1, -2             ; -ENOENT
        bne  r0, r1, bad6
        movi r0, 0
        sys  SYS_exit
bad1:   movi r0, 1
        sys  SYS_exit
bad2:   movi r0, 2
        sys  SYS_exit
bad3:   movi r0, 3
        sys  SYS_exit
bad4:   movi r0, 4
        sys  SYS_exit
bad5:   movi r0, 5
        sys  SYS_exit
bad6:   movi r0, 6
        sys  SYS_exit
        .data
oldn:   .asciiz "before.txt"
newn:   .asciiz "after.txt"
msg:    .asciiz "12345"
stbuf:  .space 32
)");
  EXPECT_EQ(code, 0);
  EXPECT_TRUE(world.FileExists("brick", "/u/user/after.txt"));
  EXPECT_FALSE(world.FileExists("brick", "/u/user/before.txt"));
}

TEST(VmSyscall, PipeBetweenForkedProcesses) {
  World world;
  const int code = RunAsm(world, R"(
; parent writes through a pipe to the child; child exits with the byte it read.
start:  sys  SYS_pipe           ; r0 = read end, r1 = write end
        mov  r6, r0
        mov  r7, r1
        sys  SYS_fork
        movi r1, 0
        beq  r0, r1, child
        ; parent: write one byte, wait for the child, exit with its code
        movi r3, pbuf
        movi r4, 42
        stb  r4, r3, 0
        mov  r0, r7
        movi r1, pbuf
        movi r2, 1
        sys  SYS_write
        sys  SYS_wait           ; r0 = pid, r1 = status (code | sig<<8)
        movi r2, 0
        blt  r0, r2, badw
        mov  r0, r1
        sys  SYS_exit
badw:   movi r0, 99
        sys  SYS_exit
child:  mov  r0, r6
        movi r1, cbuf
        movi r2, 1
        sys  SYS_read
        movi r3, cbuf
        ldb  r0, r3, 0          ; the byte (42)
        sys  SYS_exit
        .data
pbuf:   .space 4
cbuf:   .space 4
)");
  EXPECT_EQ(code, 42);
}

TEST(VmSyscall, DupSharesOffsetInVm) {
  World world;
  const int code = RunAsm(world, R"(
start:  movi r0, fname
        movi r1, 420
        sys  SYS_creat
        mov  r6, r0
        mov  r0, r6
        movi r1, data8
        movi r2, 8
        sys  SYS_write
        mov  r0, r6
        sys  SYS_dup            ; r0 = dup fd
        mov  r7, r0
        ; lseek(dup, 0, CUR) must be 8
        mov  r0, r7
        movi r1, 0
        movi r2, SEEK_CUR
        sys  SYS_lseek
        movi r1, 8
        bne  r0, r1, bad
        movi r0, 0
        sys  SYS_exit
bad:    movi r0, 1
        sys  SYS_exit
        .data
fname:  .asciiz "dup.dat"
data8:  .ascii "ABCDEFGH"
        .byte 0
)");
  EXPECT_EQ(code, 0);
}

TEST(VmSyscall, LinkUnlinkFromVm) {
  World world;
  const int code = RunAsm(world, R"(
start:  movi r0, fname
        movi r1, 420
        sys  SYS_creat
        mov  r0, r0
        sys  SYS_close
        movi r0, fname
        movi r1, lname
        sys  SYS_link
        movi r1, 0
        bne  r0, r1, bad1
        movi r0, fname
        sys  SYS_unlink
        movi r1, 0
        bne  r0, r1, bad2
        ; the hard link still resolves
        movi r0, lname
        movi r1, stbuf
        sys  SYS_stat
        movi r1, 0
        bne  r0, r1, bad3
        movi r0, 0
        sys  SYS_exit
bad1:   movi r0, 1
        sys  SYS_exit
bad2:   movi r0, 2
        sys  SYS_exit
bad3:   movi r0, 3
        sys  SYS_exit
        .data
fname:  .asciiz "orig"
lname:  .asciiz "alias"
stbuf:  .space 32
)");
  EXPECT_EQ(code, 0);
}

TEST(VmSyscall, ReadlinkFromVm) {
  World world;
  world.host("brick").vfs().SetupSymlink("/u/user/sl", "/etc");
  const int code = RunAsm(world, R"(
start:  movi r0, sl
        movi r1, buf
        movi r2, 32
        sys  SYS_readlink       ; r0 = bytes
        movi r1, 4
        bne  r0, r1, bad1
        movi r3, buf
        ldb  r4, r3, 0
        movi r5, '/'
        bne  r4, r5, bad2
        ldb  r4, r3, 1
        movi r5, 'e'
        bne  r4, r5, bad3
        movi r0, 0
        sys  SYS_exit
bad1:   movi r0, 1
        sys  SYS_exit
bad2:   movi r0, 2
        sys  SYS_exit
bad3:   movi r0, 3
        sys  SYS_exit
        .data
sl:     .asciiz "sl"
buf:    .space 32
)");
  EXPECT_EQ(code, 0);
}

TEST(VmSyscall, GethostnameBoundsChecked) {
  World world;
  const int code = RunAsm(world, R"(
start:  movi r0, buf
        movi r1, 64
        sys  SYS_gethostname
        movi r1, 0
        bne  r0, r1, bad1
        movi r3, buf
        ldb  r4, r3, 0
        movi r5, 'b'            ; "brick"
        bne  r4, r5, bad2
        ; too-small buffer fails
        movi r0, buf
        movi r1, 2
        sys  SYS_gethostname
        movi r1, 0
        beq  r0, r1, bad3
        movi r0, 0
        sys  SYS_exit
bad1:   movi r0, 1
        sys  SYS_exit
bad2:   movi r0, 2
        sys  SYS_exit
bad3:   movi r0, 3
        sys  SYS_exit
        .data
buf:    .space 64
)");
  EXPECT_EQ(code, 0);
}

TEST(VmSyscall, ExecveReplacesImage) {
  World world;
  // The replacement program exits 7 immediately.
  core::InstallProgram(world.host("brick"), "/bin/seven", R"(
start:  movi r0, 7
        sys  SYS_exit
)");
  const int code = RunAsm(world, R"(
start:  movi r0, path
        sys  SYS_execve
        movi r0, 1              ; only reached if execve failed
        sys  SYS_exit
        .data
path:   .asciiz "/bin/seven"
)");
  EXPECT_EQ(code, 7);
}

TEST(VmSyscall, ExecveFailureReturnsToCaller) {
  World world;
  const int code = RunAsm(world, R"(
start:  movi r0, path
        sys  SYS_execve
        movi r1, -2             ; -ENOENT
        bne  r0, r1, bad
        movi r0, 0
        sys  SYS_exit
bad:    movi r0, 1
        sys  SYS_exit
        .data
path:   .asciiz "/bin/does-not-exist"
)");
  EXPECT_EQ(code, 0);
}

TEST(VmSyscall, ErrnosArriveAsNegativeValues) {
  World world;
  const int code = RunAsm(world, R"(
start:  movi r0, 57             ; read from an unopened fd
        movi r1, buf
        movi r2, 4
        sys  SYS_read
        movi r1, -9             ; -EBADF
        bne  r0, r1, bad1
        movi r0, nope
        movi r1, O_RDONLY
        movi r2, 0
        sys  SYS_open
        movi r1, -2             ; -ENOENT
        bne  r0, r1, bad2
        movi r0, 0
        sys  SYS_exit
bad1:   movi r0, 1
        sys  SYS_exit
bad2:   movi r0, 2
        sys  SYS_exit
        .data
buf:    .space 4
nope:   .asciiz "/no/such/file"
)");
  EXPECT_EQ(code, 0);
}

TEST(VmSyscall, UnknownSyscallIsEinval) {
  World world;
  const int code = RunAsm(world, R"(
start:  sys  999
        movi r1, -22            ; -EINVAL
        bne  r0, r1, bad
        movi r0, 0
        sys  SYS_exit
bad:    movi r0, 1
        sys  SYS_exit
)");
  EXPECT_EQ(code, 0);
}

TEST(VmSyscall, BadPointerIsEfault) {
  World world;
  const int code = RunAsm(world, R"(
start:  movi r0, 1              ; pointer into text: not readable as a string
        movi r1, O_RDONLY
        movi r2, 0
        sys  SYS_open
        movi r1, -14            ; -EFAULT
        bne  r0, r1, bad
        movi r0, 0
        sys  SYS_exit
bad:    movi r0, 1
        sys  SYS_exit
)");
  EXPECT_EQ(code, 0);
}

TEST(VmSyscall, KillSelfWithSigTerm) {
  World world;
  core::InstallProgram(world.host("brick"), "/bin/t", R"(
start:  sys  SYS_getpid
        mov  r5, r0
        mov  r0, r5
        movi r1, SIGTERM
        sys  SYS_kill
loop:   jmp  loop               ; the signal arrives at the next quantum
)");
  kernel::Kernel& k = world.host("brick");
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const Result<int32_t> pid = k.SpawnVm("/bin/t", {}, opts);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(world.RunUntilExited("brick", *pid, sim::Seconds(10)));
  EXPECT_EQ(world.ExitInfoOf("brick", *pid).killed_by_signal, vm::abi::kSigTerm);
}

TEST(VmSyscall, SbrkGrowsAndShrinksTheHeap) {
  World world;
  const int code = RunAsm(world, R"(
start:  movi r0, 4096
        sys  SYS_brk            ; r0 = old break (end of static data)
        movi r1, 0
        blt  r0, r1, bad1
        mov  r6, r0             ; heap base
        ; write a pattern across the new heap
        movi r2, 0
fill:   add  r3, r6, r2
        mov  r4, r2
        stb  r4, r3, 0
        addi r2, r2, 1
        movi r5, 4096
        blt  r2, r5, fill
        ; read one back
        ldb  r4, r6, 100
        movi r5, 100
        bne  r4, r5, bad2
        ; shrink below zero is ENOMEM
        movi r0, -1000000
        sys  SYS_brk
        movi r1, -12            ; -ENOMEM
        bne  r0, r1, bad3
        ; shrink legitimately; access past the new break faults... so just exit
        movi r0, -4096
        sys  SYS_brk
        movi r1, 0
        blt  r0, r1, bad4
        movi r0, 0
        sys  SYS_exit
bad1:   movi r0, 1
        sys  SYS_exit
bad2:   movi r0, 2
        sys  SYS_exit
bad3:   movi r0, 3
        sys  SYS_exit
bad4:   movi r0, 4
        sys  SYS_exit
)");
  EXPECT_EQ(code, 0);
}

TEST(VmSyscall, GrownHeapSurvivesMigration) {
  // An sbrk'd heap is part of the data segment: the dump carries it whole.
  World world;
  core::InstallProgram(world.host("brick"), "/bin/heapy", R"(
start:  movi r0, 8192
        sys  SYS_brk
        mov  r6, r0             ; heap base
        ; stamp a recognisable value deep in the heap
        movi r4, 77
        stb  r4, r6, 8000
        ; prompt and wait (the dump point)
        movi r0, 1
        movi r1, pr
        movi r2, 2
        sys  SYS_write
        movi r0, 0
        movi r1, buf
        movi r2, 16
        sys  SYS_read
        ; after migration: verify the heap byte, print verdict
        ldb  r4, r6, 8000
        movi r5, 77
        bne  r4, r5, lost
        movi r0, 1
        movi r1, okmsg
        movi r2, 8
        sys  SYS_write
        movi r0, 0
        sys  SYS_exit
lost:   movi r0, 1
        movi r1, badmsg
        movi r2, 9
        sys  SYS_write
        movi r0, 1
        sys  SYS_exit
        .data
pr:     .asciiz "? "
okmsg:  .ascii "heap ok\n"
badmsg: .ascii "heap bad\n"
buf:    .space 16
)");
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.tty = world.console("brick");
  opts.cwd = "/u/user";
  const Result<int32_t> pid = world.host("brick").SpawnVm("/bin/heapy", {}, opts);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(world.RunUntilBlocked("brick", *pid));

  const int32_t mig = world.StartTool(
      "schooner", "migrate", {"-p", std::to_string(*pid), "-f", "brick", "-t", "schooner"},
      kUserUid, world.console("schooner"));
  ASSERT_TRUE(world.RunUntilExited("schooner", mig, sim::Seconds(300)));
  ASSERT_EQ(world.ExitInfoOf("schooner", mig).exit_code, 0);
  const int32_t moved = world.FindPidByCommand("schooner", "migrated");
  ASSERT_GT(moved, 0);
  world.console("schooner")->Type("go\n");
  ASSERT_TRUE(world.RunUntilExited("schooner", moved, sim::Seconds(60)));
  EXPECT_EQ(world.ExitInfoOf("schooner", moved).exit_code, 0);
  EXPECT_NE(world.console("schooner")->PlainOutput().find("heap ok"), std::string::npos);
}

}  // namespace
}  // namespace pmig
