// CPU executor semantics: every opcode, faults, memory protection, and the
// dump/restore invariants of VmContext.

#include "src/vm/cpu.h"

#include <gtest/gtest.h>

#include "src/vm/assembler.h"

namespace pmig::vm {
namespace {

// Assembles and runs `source` until syscall/fault/step-limit; returns the context.
struct RunResult {
  VmContext ctx;
  StopReason reason;
  Fault fault;
  int32_t syscall;
};

RunResult RunProgram(std::string_view source, int64_t max_steps = 10000,
                     IsaLevel machine = IsaLevel::kIsa20) {
  RunResult r;
  r.ctx.LoadImage(MustAssemble(source));
  Cpu cpu(machine);
  r.reason = cpu.Run(r.ctx, max_steps);
  r.fault = cpu.last_fault();
  r.syscall = cpu.last_syscall();
  return r;
}

// Each arithmetic case ends with `sys 0` so the run stops deterministically.
struct AluCase {
  const char* name;
  const char* source;
  int reg;
  int64_t expected;
};

class AluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluTest, ComputesExpectedValue) {
  const RunResult r = RunProgram(GetParam().source);
  ASSERT_EQ(r.reason, StopReason::kSyscall) << GetParam().name;
  EXPECT_EQ(r.ctx.cpu.regs[GetParam().reg], GetParam().expected) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluTest,
    ::testing::Values(
        AluCase{"movi", "movi r1, -7\nsys 0\n", 1, -7},
        AluCase{"mov", "movi r1, 5\nmov r2, r1\nsys 0\n", 2, 5},
        AluCase{"add", "movi r1, 2\nmovi r2, 3\nadd r3, r1, r2\nsys 0\n", 3, 5},
        AluCase{"sub", "movi r1, 2\nmovi r2, 3\nsub r3, r1, r2\nsys 0\n", 3, -1},
        AluCase{"mul", "movi r1, -4\nmovi r2, 3\nmul r3, r1, r2\nsys 0\n", 3, -12},
        AluCase{"div", "movi r1, 17\nmovi r2, 5\ndiv r3, r1, r2\nsys 0\n", 3, 3},
        AluCase{"mod", "movi r1, 17\nmovi r2, 5\nmod r3, r1, r2\nsys 0\n", 3, 2},
        AluCase{"and", "movi r1, 12\nmovi r2, 10\nand r3, r1, r2\nsys 0\n", 3, 8},
        AluCase{"or", "movi r1, 12\nmovi r2, 10\nor r3, r1, r2\nsys 0\n", 3, 14},
        AluCase{"xor", "movi r1, 12\nmovi r2, 10\nxor r3, r1, r2\nsys 0\n", 3, 6},
        AluCase{"shl", "movi r1, 3\nmovi r2, 4\nshl r3, r1, r2\nsys 0\n", 3, 48},
        AluCase{"shr", "movi r1, 48\nmovi r2, 4\nshr r3, r1, r2\nsys 0\n", 3, 3},
        AluCase{"addi", "movi r1, 5\naddi r2, r1, -3\nsys 0\n", 2, 2},
        AluCase{"lmul", "movi r1, 6\nmovi r2, 7\nlmul r3, r1, r2\nsys 0\n", 3, 42},
        AluCase{"bfext", "movi r1, 0xF0\nbfext r2, r1, 4+1024\nsys 0\n", 2, 15}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Cpu, LoadStore64) {
  const RunResult r = RunProgram(R"(
        movi r1, buf
        movi r2, -99
        st   r2, r1, 0
        ld   r3, r1, 0
        sys  0
        .data
buf:    .quad 0
)");
  ASSERT_EQ(r.reason, StopReason::kSyscall);
  EXPECT_EQ(r.ctx.cpu.regs[3], -99);
}

TEST(Cpu, LoadStoreByte) {
  const RunResult r = RunProgram(R"(
        movi r1, buf
        movi r2, 0x1FF
        stb  r2, r1, 1
        ldb  r3, r1, 1
        sys  0
        .data
buf:    .space 4
)");
  ASSERT_EQ(r.reason, StopReason::kSyscall);
  EXPECT_EQ(r.ctx.cpu.regs[3], 0xFF);  // stores only the low byte, loads zero-extend
}

TEST(Cpu, PushPop) {
  const RunResult r = RunProgram("movi r1, 11\npush r1\nmovi r1, 0\npop r2\nsys 0\n");
  ASSERT_EQ(r.reason, StopReason::kSyscall);
  EXPECT_EQ(r.ctx.cpu.regs[2], 11);
  EXPECT_EQ(r.ctx.cpu.sp, kStackTop);  // balanced
}

TEST(Cpu, CallRet) {
  const RunResult r = RunProgram(R"(
start:  call f
        sys  0
f:      movi r5, 77
        ret
)");
  ASSERT_EQ(r.reason, StopReason::kSyscall);
  EXPECT_EQ(r.ctx.cpu.regs[5], 77);
  EXPECT_EQ(r.ctx.cpu.sp, kStackTop);
}

TEST(Cpu, ConditionalBranches) {
  const RunResult r = RunProgram(R"(
        movi r1, 5
        movi r2, 5
        beq  r1, r2, eq_ok
        movi r7, 1
eq_ok:  movi r3, 4
        bne  r1, r3, ne_ok
        movi r7, 2
ne_ok:  blt  r3, r1, lt_ok
        movi r7, 3
lt_ok:  bge  r1, r2, ge_ok
        movi r7, 4
ge_ok:  sys  0
)");
  ASSERT_EQ(r.reason, StopReason::kSyscall);
  EXPECT_EQ(r.ctx.cpu.regs[7], 0);  // no fall-through branch taken
}

TEST(Cpu, SyscallReportsNumberAndAdvancesPc) {
  const RunResult r = RunProgram("sys 42\n");
  ASSERT_EQ(r.reason, StopReason::kSyscall);
  EXPECT_EQ(r.syscall, 42);
  EXPECT_EQ(r.ctx.cpu.pc, static_cast<uint32_t>(kInstrBytes));
}

TEST(Cpu, StepBudgetPreempts) {
  VmContext ctx;
  ctx.LoadImage(MustAssemble("loop: jmp loop\n"));
  Cpu cpu(IsaLevel::kIsa20);
  EXPECT_EQ(cpu.Run(ctx, 100), StopReason::kSteps);
  EXPECT_EQ(cpu.steps_executed(), 100);
}

// --- Faults ---

TEST(CpuFault, DivideByZero) {
  const RunResult r = RunProgram("movi r1, 1\nmovi r2, 0\ndiv r3, r1, r2\nsys 0\n");
  ASSERT_EQ(r.reason, StopReason::kFault);
  EXPECT_EQ(r.fault, Fault::kDivideByZero);
  // pc left on the faulting instruction.
  EXPECT_EQ(r.ctx.cpu.pc, static_cast<uint32_t>(2 * kInstrBytes));
}

TEST(CpuFault, ModByZero) {
  const RunResult r = RunProgram("movi r2, 0\nmod r3, r3, r2\nsys 0\n");
  EXPECT_EQ(r.fault, Fault::kDivideByZero);
}

TEST(CpuFault, LoadOutsideSegments) {
  const RunResult r = RunProgram("movi r1, 0x500\nld r2, r1, 0\nsys 0\n");
  EXPECT_EQ(r.fault, Fault::kBadAddress);  // 0x500 is in text, not data/stack
}

TEST(CpuFault, StoreToTextIsRejected) {
  const RunResult r = RunProgram("movi r1, 0\nst r1, r1, 0\nsys 0\n");
  EXPECT_EQ(r.fault, Fault::kBadAddress);
}

TEST(CpuFault, RunOffEndOfText) {
  const RunResult r = RunProgram("nop\n");
  EXPECT_EQ(r.reason, StopReason::kFault);
  EXPECT_EQ(r.fault, Fault::kBadAddress);
}

TEST(CpuFault, HaltIsIllegal) {
  const RunResult r = RunProgram("halt\n");
  EXPECT_EQ(r.fault, Fault::kIllegalInstruction);
}

TEST(CpuFault, Isa20OpcodeOnIsa10Machine) {
  const RunResult r = RunProgram("lmul r1, r2, r3\nsys 0\n", 100, IsaLevel::kIsa10);
  EXPECT_EQ(r.reason, StopReason::kFault);
  EXPECT_EQ(r.fault, Fault::kIsaViolation);
}

TEST(CpuFault, Isa20OpcodeRunsOnIsa20Machine) {
  const RunResult r = RunProgram("lmul r1, r2, r3\nsys 0\n", 100, IsaLevel::kIsa20);
  EXPECT_EQ(r.reason, StopReason::kSyscall);
}

TEST(CpuFault, StackOverflow) {
  const RunResult r = RunProgram("loop: push r0\njmp loop\n", 1 << 20);
  EXPECT_EQ(r.fault, Fault::kStackOverflow);
}

// --- VmContext memory and dump/restore ---

TEST(VmContext, ReadWriteCString) {
  VmContext ctx;
  ctx.data.resize(64);
  ASSERT_TRUE(ctx.WriteCString(kDataBase, "hello"));
  std::string s;
  ASSERT_TRUE(ctx.ReadCString(kDataBase, 63, &s));
  EXPECT_EQ(s, "hello");
}

TEST(VmContext, ReadCStringUnterminatedFails) {
  VmContext ctx;
  ctx.data.assign(4, 'x');  // no NUL
  std::string s;
  EXPECT_FALSE(ctx.ReadCString(kDataBase, 3, &s));
}

TEST(VmContext, StackContentsRoundTrip) {
  VmContext ctx;
  ctx.cpu.sp = kStackTop - 16;
  ASSERT_TRUE(ctx.WriteU64(ctx.cpu.sp, 0x1111));
  ASSERT_TRUE(ctx.WriteU64(ctx.cpu.sp + 8, 0x2222));
  const std::vector<uint8_t> dump = ctx.StackContents();
  EXPECT_EQ(dump.size(), 16u);

  VmContext fresh;
  ASSERT_TRUE(fresh.SetStackContents(dump));
  EXPECT_EQ(fresh.cpu.sp, kStackTop - 16);
  int64_t a = 0, b = 0;
  ASSERT_TRUE(fresh.ReadU64(fresh.cpu.sp, &a));
  ASSERT_TRUE(fresh.ReadU64(fresh.cpu.sp + 8, &b));
  EXPECT_EQ(a, 0x1111);
  EXPECT_EQ(b, 0x2222);
}

TEST(VmContext, SetStackContentsRejectsOversize) {
  VmContext ctx;
  EXPECT_FALSE(ctx.SetStackContents(std::vector<uint8_t>(kStackMax + 1)));
}

TEST(VmContext, LoadImageResetsEverything) {
  VmContext ctx;
  ctx.cpu.regs[0] = 99;
  ctx.cpu.sp = kStackTop - 100;
  const AoutImage img = MustAssemble("start: nop\nsys 0\n.data\n.quad 3\n");
  ctx.LoadImage(img);
  EXPECT_EQ(ctx.cpu.regs[0], 0);
  EXPECT_EQ(ctx.cpu.sp, kStackTop);
  EXPECT_EQ(ctx.cpu.pc, img.header.entry);
  EXPECT_EQ(ctx.data.size(), 8u);
}

TEST(VmContext, U16Accessors) {
  VmContext ctx;
  ctx.data.resize(8);
  ASSERT_TRUE(ctx.WriteU16(kDataBase + 2, 0xBEEF));
  uint16_t v = 0;
  ASSERT_TRUE(ctx.ReadU16(kDataBase + 2, &v));
  EXPECT_EQ(v, 0xBEEF);
}

TEST(FaultName, Names) {
  EXPECT_EQ(FaultName(Fault::kDivideByZero), "divide by zero");
  EXPECT_EQ(FaultName(Fault::kIsaViolation), "isa violation");
}

}  // namespace
}  // namespace pmig::vm
