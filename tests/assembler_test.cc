// Assembler, disassembler, and a.out format tests.

#include "src/vm/assembler.h"

#include <gtest/gtest.h>

#include "src/vm/abi.h"
#include "src/vm/aout.h"
#include "src/vm/disassembler.h"

namespace pmig::vm {
namespace {

TEST(Assembler, EmptySourceIsValid) {
  const AsmOutput out = Assemble("");
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.image.text.empty());
  EXPECT_TRUE(out.image.data.empty());
}

TEST(Assembler, EncodesOneInstruction) {
  const AsmOutput out = Assemble("movi r3, 42\n");
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.image.text.size(), static_cast<size_t>(kInstrBytes));
  const Instruction in = Instruction::Decode(out.image.text.data());
  EXPECT_EQ(in.op, Opcode::kMovI);
  EXPECT_EQ(in.ra, 3);
  EXPECT_EQ(in.imm, 42);
}

TEST(Assembler, CommentsAndBlankLines) {
  const AsmOutput out = Assemble("; full line comment\n\n  nop ; trailing\n# hash\n");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.image.text.size(), static_cast<size_t>(kInstrBytes));
}

TEST(Assembler, TextLabelsResolveToByteOffsets) {
  const AsmOutput out = Assemble(R"(
start:  nop
loop:   addi r0, r0, 1
        jmp  loop
)");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.symbols.at("start"), 0);
  EXPECT_EQ(out.symbols.at("loop"), kInstrBytes);
  const Instruction jmp = Instruction::Decode(out.image.text.data() + 2 * kInstrBytes);
  EXPECT_EQ(jmp.op, Opcode::kJmp);
  EXPECT_EQ(jmp.imm, kInstrBytes);
}

TEST(Assembler, DataLabelsResolveToDataBase) {
  const AsmOutput out = Assemble(R"(
        .data
a:      .quad 1
b:      .byte 2
c:      .asciiz "hi"
d:      .space 5
e:      .quad 0
)");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.symbols.at("a"), kDataBase);
  EXPECT_EQ(out.symbols.at("b"), kDataBase + 8);
  EXPECT_EQ(out.symbols.at("c"), kDataBase + 9);
  EXPECT_EQ(out.symbols.at("d"), kDataBase + 12);  // "hi\0" is 3 bytes
  EXPECT_EQ(out.symbols.at("e"), kDataBase + 17);
  EXPECT_EQ(out.image.data.size(), 25u);
}

TEST(Assembler, QuadIsLittleEndian) {
  const AsmOutput out = Assemble(".data\nv: .quad 0x0102030405060708\n");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.image.data[0], 0x08);
  EXPECT_EQ(out.image.data[7], 0x01);
}

TEST(Assembler, StringEscapes) {
  const AsmOutput out = Assemble(".data\ns: .ascii \"a\\n\\t\\\"b\\\\\"\n");
  ASSERT_TRUE(out.ok);
  const std::string s(out.image.data.begin(), out.image.data.end());
  EXPECT_EQ(s, "a\n\t\"b\\");
}

TEST(Assembler, ForwardReferences) {
  const AsmOutput out = Assemble(R"(
        jmp end
        nop
end:    nop
)");
  ASSERT_TRUE(out.ok);
  const Instruction jmp = Instruction::Decode(out.image.text.data());
  EXPECT_EQ(jmp.imm, 2 * kInstrBytes);
}

TEST(Assembler, EquConstants) {
  const AsmOutput out = Assemble(".equ N, 7\nmovi r0, N+1\n");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(Instruction::Decode(out.image.text.data()).imm, 8);
}

TEST(Assembler, PredefinedAbiSymbols) {
  const AsmOutput out = Assemble("sys SYS_write\nmovi r1, O_CREAT+O_WRONLY\n");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(Instruction::Decode(out.image.text.data()).imm, abi::kSysWrite);
  EXPECT_EQ(Instruction::Decode(out.image.text.data() + kInstrBytes).imm,
            abi::kOCreat | abi::kOWrOnly);
}

TEST(Assembler, CharacterLiterals) {
  const AsmOutput out = Assemble("movi r0, 'q'\nmovi r1, '\\n'\n");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(Instruction::Decode(out.image.text.data()).imm, 'q');
  EXPECT_EQ(Instruction::Decode(out.image.text.data() + kInstrBytes).imm, '\n');
}

TEST(Assembler, HexAndNegativeNumbers) {
  const AsmOutput out = Assemble("movi r0, 0x10\nmovi r1, -5\n");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(Instruction::Decode(out.image.text.data()).imm, 16);
  EXPECT_EQ(Instruction::Decode(out.image.text.data() + kInstrBytes).imm, -5);
}

TEST(Assembler, EntryDefaultsToStartLabel) {
  const AsmOutput out = Assemble("nop\nstart: nop\n");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.image.header.entry, static_cast<uint32_t>(kInstrBytes));
}

TEST(Assembler, ExplicitEntryDirective) {
  const AsmOutput out = Assemble(".entry here\nnop\nhere: nop\n");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.image.header.entry, static_cast<uint32_t>(kInstrBytes));
}

TEST(Assembler, IsaInferredFromOpcodes) {
  EXPECT_EQ(Assemble("mul r0, r1, r2\n").image.header.machtype, 10u);
  EXPECT_EQ(Assemble("lmul r0, r1, r2\n").image.header.machtype, 20u);
}

TEST(Assembler, IsaDirectiveOverrides) {
  const AsmOutput out = Assemble(".isa 20\nnop\n");
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.image.header.machtype, 20u);
}

// --- Error reporting ---

TEST(AssemblerErrors, UnknownMnemonic) {
  const AsmOutput out = Assemble("bogus r1\n");
  ASSERT_FALSE(out.ok);
  EXPECT_NE(out.errors[0].message.find("unknown mnemonic"), std::string::npos);
  EXPECT_EQ(out.errors[0].line, 1);
}

TEST(AssemblerErrors, UndefinedSymbol) {
  const AsmOutput out = Assemble("jmp nowhere\n");
  ASSERT_FALSE(out.ok);
  EXPECT_NE(out.errors[0].message.find("undefined symbol"), std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel) {
  const AsmOutput out = Assemble("a: nop\na: nop\n");
  ASSERT_FALSE(out.ok);
  EXPECT_NE(out.errors[0].message.find("duplicate label"), std::string::npos);
}

TEST(AssemblerErrors, BadRegister) {
  const AsmOutput out = Assemble("movi r9, 1\n");
  ASSERT_FALSE(out.ok);
}

TEST(AssemblerErrors, WrongOperandCount) {
  const AsmOutput out = Assemble("add r1, r2\n");
  ASSERT_FALSE(out.ok);
  EXPECT_NE(out.errors[0].message.find("expects 3"), std::string::npos);
}

TEST(AssemblerErrors, InstructionInDataSection) {
  const AsmOutput out = Assemble(".data\nnop\n");
  ASSERT_FALSE(out.ok);
  EXPECT_NE(out.errors[0].message.find("outside .text"), std::string::npos);
}

TEST(AssemblerErrors, ReportsMultipleErrors) {
  const AsmOutput out = Assemble("bogus\nalso_bogus\n");
  ASSERT_FALSE(out.ok);
  EXPECT_GE(out.errors.size(), 2u);
}

// --- Instruction encode/decode ---

TEST(Instruction, EncodeDecodeRoundTrip) {
  for (size_t op = 0; op < static_cast<size_t>(Opcode::kNumOpcodes); ++op) {
    Instruction in;
    in.op = static_cast<Opcode>(op);
    in.ra = 1;
    in.rb = 2;
    in.rc = 3;
    in.imm = -123456;
    const auto bytes = in.Encode();
    EXPECT_EQ(Instruction::Decode(bytes.data()), in);
  }
}

TEST(Disassembler, RendersShapes) {
  EXPECT_EQ(DisassembleInstruction({Opcode::kNop, 0, 0, 0, 0}), "nop");
  EXPECT_EQ(DisassembleInstruction({Opcode::kMovI, 2, 0, 0, 9}), "movi r2, 9");
  EXPECT_EQ(DisassembleInstruction({Opcode::kAdd, 1, 2, 3, 0}), "add r1, r2, r3");
  EXPECT_EQ(DisassembleInstruction({Opcode::kSys, 0, 0, 0, 4}), "sys 4");
  EXPECT_EQ(DisassembleInstruction({Opcode::kPush, 5, 0, 0, 0}), "push r5");
}

TEST(Disassembler, AssembleDisassembleAgrees) {
  const AsmOutput out = Assemble("movi r1, 10\nadd r2, r1, r1\nsys 1\n");
  ASSERT_TRUE(out.ok);
  const std::string listing = DisassembleText(out.image.text);
  EXPECT_NE(listing.find("movi r1, 10"), std::string::npos);
  EXPECT_NE(listing.find("add r2, r1, r1"), std::string::npos);
  EXPECT_NE(listing.find("sys 1"), std::string::npos);
}

// --- a.out format ---

TEST(Aout, SerializeParseRoundTrip) {
  AoutImage img;
  img.text = {1, 2, 3, 4, 5, 6, 7, 8};
  img.data = {9, 10};
  img.header.entry = 0;
  img.header.machtype = 20;
  const Result<AoutImage> back = AoutImage::Parse(img.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->text, img.text);
  EXPECT_EQ(back->data, img.data);
  EXPECT_EQ(back->header.machtype, 20u);
  EXPECT_EQ(back->isa_level(), IsaLevel::kIsa20);
}

TEST(Aout, RejectsBadMagic) {
  AoutImage img;
  std::vector<uint8_t> bytes = img.Serialize();
  bytes[0] ^= 0xFF;
  EXPECT_EQ(AoutImage::Parse(bytes).error(), Errno::kNoExec);
}

TEST(Aout, RejectsTruncated) {
  AoutImage img;
  img.text.resize(kInstrBytes);
  std::vector<uint8_t> bytes = img.Serialize();
  bytes.resize(bytes.size() - 4);
  EXPECT_EQ(AoutImage::Parse(bytes).error(), Errno::kNoExec);
}

TEST(Aout, RejectsMisalignedText) {
  AoutImage img;
  img.text.resize(5);  // not a multiple of kInstrBytes
  EXPECT_EQ(AoutImage::Parse(img.Serialize()).error(), Errno::kNoExec);
}

TEST(Aout, RejectsBadMachtype) {
  AoutImage img;
  img.header.machtype = 30;
  EXPECT_EQ(AoutImage::Parse(img.Serialize()).error(), Errno::kNoExec);
}

TEST(RequiredLevel, DetectsIsa20Opcodes) {
  const AsmOutput base = Assemble("mul r0, r1, r2\nsys 1\n");
  EXPECT_EQ(RequiredLevel(base.image.text.data(), base.image.text.size()), IsaLevel::kIsa10);
  const AsmOutput ext = Assemble("lmul r0, r1, r2\nsys 1\n");
  EXPECT_EQ(RequiredLevel(ext.image.text.data(), ext.image.text.size()), IsaLevel::kIsa20);
}

TEST(IsaCompatible, SupersetRule) {
  EXPECT_TRUE(IsaCompatible(IsaLevel::kIsa10, IsaLevel::kIsa20));
  EXPECT_TRUE(IsaCompatible(IsaLevel::kIsa10, IsaLevel::kIsa10));
  EXPECT_FALSE(IsaCompatible(IsaLevel::kIsa20, IsaLevel::kIsa10));
}

}  // namespace
}  // namespace pmig::vm
