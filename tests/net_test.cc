// Network-model arithmetic and transport details not covered elsewhere.

#include "src/net/network.h"

#include <gtest/gtest.h>

#include "src/net/rsh.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using test::kUserUid;
using test::World;

TEST(Network, TransferTimeScalesWithBytes) {
  sim::CostModel costs;
  net::Network net(&costs);
  EXPECT_GE(net.TransferTime(0), costs.nfs_rpc / 2);
  EXPECT_EQ(net.TransferTime(1000) - net.TransferTime(0), 1000 * costs.net_per_byte);
  EXPECT_LT(net.TransferTime(100), net.TransferTime(10000));
}

TEST(Network, FindHostByName) {
  World world;
  net::Network& net = world.cluster().network();
  ASSERT_NE(net.FindHost("brick"), nullptr);
  EXPECT_EQ(net.FindHost("brick")->hostname(), "brick");
  EXPECT_EQ(net.FindHost("atlantis"), nullptr);
  EXPECT_EQ(net.hosts().size(), 2u);
}

TEST(Network, SpawnServiceRegistry) {
  sim::CostModel costs;
  net::Network net(&costs);
  net::SpawnService service;
  net.RegisterSpawnService("brick", &service);
  EXPECT_EQ(net.FindSpawnService("brick"), &service);
  EXPECT_EQ(net.FindSpawnService("schooner"), nullptr);
}

TEST(SpawnService, QueueFifo) {
  net::SpawnService service;
  EXPECT_FALSE(service.HasPending());
  EXPECT_EQ(service.Pop(), nullptr);
  auto a = std::make_shared<net::SpawnService::Request>();
  auto b = std::make_shared<net::SpawnService::Request>();
  service.Push(a);
  service.Push(b);
  EXPECT_TRUE(service.HasPending());
  EXPECT_EQ(service.Pop(), a);
  EXPECT_EQ(service.Pop(), b);
  EXPECT_FALSE(service.HasPending());
}

TEST(Rsh, LargeOutputPaysTransferTime) {
  // A remote command producing lots of output costs wire time proportional to it.
  World world;
  world.cluster().RegisterProgram(
      "chatty", [](kernel::SyscallApi& api, const std::vector<std::string>&) {
        const Result<int64_t> n = api.Write(1, std::string(50000, 'y'));
        return n.ok() ? 0 : 1;
      });
  world.cluster().RegisterProgram(
      "quiet", [](kernel::SyscallApi&, const std::vector<std::string>&) { return 0; });
  net::Network* net = &world.cluster().network();

  auto run = [&world, net](const std::string& program) {
    const sim::Nanos t0 = world.cluster().clock().now();
    kernel::SpawnOptions opts;
    opts.creds = {kUserUid, 10, kUserUid, 10};
    opts.tty = world.console("brick");
    const int32_t pid = world.host("brick").SpawnNative(
        "caller",
        [net, program](kernel::SyscallApi& api) {
          const Result<int> rc = net::Rsh(api, *net, "schooner", program, {});
          return rc.value_or(127);
        },
        opts);
    world.RunUntilExited("brick", pid, sim::Seconds(300));
    return world.cluster().clock().now() - t0;
  };
  const sim::Nanos quiet = run("quiet");
  const sim::Nanos chatty = run("chatty");
  EXPECT_GE(chatty - quiet, 50000 * world.cluster().costs().net_per_byte / 2);
  // And the output arrived on the caller's terminal.
  EXPECT_GE(world.console("brick")->PlainOutput().size(), 50000u);
}

TEST(Tty, CrModMapsCarriageReturnOnInput) {
  World world;
  kernel::Tty* tty = world.console("brick");
  tty->Type("line\r");  // a 1980s terminal sends CR
  EXPECT_TRUE(tty->InputReady());  // mapped to NL: the cooked line is complete
  EXPECT_EQ(tty->ConsumeInput(100), "line\n");
}

TEST(Tty, RawModeDisablesCrMapping) {
  World world;
  kernel::Tty* tty = world.console("brick");
  tty->set_flags(vm::abi::kTtyRaw);
  tty->Type("x\r");
  EXPECT_EQ(tty->ConsumeInput(100), "x\r");
}

TEST(Tty, OutputCrLfExpansionOnlyWhenCooked) {
  World world;
  kernel::Tty* tty = world.console("brick");
  tty->AppendOutput("a\n");
  EXPECT_EQ(tty->output(), "a\r\n");
  tty->ClearOutput();
  tty->set_flags(vm::abi::kTtyRaw);
  tty->AppendOutput("b\n");
  EXPECT_EQ(tty->output(), "b\n");
}

}  // namespace
}  // namespace pmig
