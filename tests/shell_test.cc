// The msh shell: tokenizing, built-ins, command resolution, job control — and a
// full migrate session driven entirely from the shell, the way the paper's users
// did it.

#include "src/core/shell.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace pmig {
namespace {

using core::TokenizeCommandLine;
using test::kUserUid;
using test::World;

TEST(ShellTokenize, SplitsOnWhitespace) {
  EXPECT_EQ(TokenizeCommandLine("migrate -p 100 -t schooner\n"),
            (std::vector<std::string>{"migrate", "-p", "100", "-t", "schooner"}));
  EXPECT_EQ(TokenizeCommandLine("  a\t b  \n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(TokenizeCommandLine("   \n").empty());
  EXPECT_TRUE(TokenizeCommandLine("").empty());
}

// Starts a shell on brick's console; returns its pid.
int32_t StartShell(World& world, std::string_view host = "brick") {
  return world.StartTool(host, "sh", {}, kUserUid, world.console(host));
}

// Occurrences of the shell prompt in a console's output so far.
size_t PromptCount(World& world, std::string_view host) {
  const std::string out = world.console(host)->PlainOutput();
  size_t count = 0;
  for (size_t at = out.find("$ "); at != std::string::npos; at = out.find("$ ", at + 2)) {
    ++count;
  }
  return count;
}

// Types a command and waits until the shell has printed its NEXT prompt (i.e. the
// command fully completed — merely "shell is blocked" could mean it is waiting on
// a foreground child).
void Command(World& world, int32_t shell, const std::string& line,
             std::string_view host = "brick") {
  const size_t before = PromptCount(world, host);
  world.console(host)->Type(line + "\n");
  ASSERT_TRUE(world.cluster().RunUntil([&world, host, before] {
    return PromptCount(world, host) > before;
  })) << line;
  (void)shell;
}

TEST(Shell, PromptAndBuiltins) {
  World world;
  const int32_t shell = StartShell(world);
  ASSERT_TRUE(world.RunUntilBlocked("brick", shell));
  EXPECT_NE(world.console("brick")->PlainOutput().find("$ "), std::string::npos);

  Command(world, shell, "pwd");
  EXPECT_NE(world.console("brick")->PlainOutput().find("/\n"), std::string::npos);

  Command(world, shell, "cd /usr/tmp");
  Command(world, shell, "pwd");
  EXPECT_NE(world.console("brick")->PlainOutput().find("/usr/tmp\n"), std::string::npos);

  Command(world, shell, "cd /no/such/place");
  EXPECT_NE(world.console("brick")->PlainOutput().find("no such directory"),
            std::string::npos);

  world.console("brick")->Type("exit 3\n");
  ASSERT_TRUE(world.RunUntilExited("brick", shell));
  EXPECT_EQ(world.ExitInfoOf("brick", shell).exit_code, 3);
}

TEST(Shell, ExitsOnEndOfFile) {
  // A shell with /dev/null-ish stdin (no tty) reads EOF immediately.
  World world;
  kernel::Kernel& k = world.host("brick");
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const Result<int32_t> pid = k.SpawnProgram("sh", {}, opts);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(world.RunUntilExited("brick", *pid, sim::Seconds(30)));
  EXPECT_EQ(world.ExitInfoOf("brick", *pid).exit_code, 0);
}

TEST(Shell, RunsVmProgramsFromBin) {
  World world;
  const int32_t shell = StartShell(world);
  ASSERT_TRUE(world.RunUntilBlocked("brick", shell));
  Command(world, shell, "hog 1000");  // runs /bin/hog in the foreground
  // Back at the prompt means the job completed and was reaped.
  EXPECT_EQ(world.FindPidByCommand("brick", "hog"), -1);
}

TEST(Shell, RunsRegisteredToolsAndReportsUnknown) {
  World world;
  const int32_t shell = StartShell(world);
  ASSERT_TRUE(world.RunUntilBlocked("brick", shell));
  Command(world, shell, "ps");
  EXPECT_NE(world.console("brick")->PlainOutput().find("PID STAT"), std::string::npos);
  EXPECT_NE(world.console("brick")->PlainOutput().find("sh"), std::string::npos);

  Command(world, shell, "frobnicate");
  EXPECT_NE(world.console("brick")->PlainOutput().find("frobnicate: not found"),
            std::string::npos);
}

TEST(Shell, BackgroundJobsRunAndGetReaped) {
  World world;
  const int32_t shell = StartShell(world);
  ASSERT_TRUE(world.RunUntilBlocked("brick", shell));
  Command(world, shell, "hog 200000 &");
  // The hog runs while the shell prompts.
  const int32_t hog = world.FindPidByCommand("brick", "hog");
  ASSERT_GT(hog, 0);
  Command(world, shell, "jobs");
  EXPECT_NE(world.console("brick")->PlainOutput().find(std::to_string(hog)),
            std::string::npos);
  ASSERT_TRUE(world.RunUntilExited("brick", hog, sim::Seconds(30)));
  // Next prompt announces completion.
  Command(world, shell, "pwd");
  EXPECT_NE(world.console("brick")->PlainOutput().find("[done] " + std::to_string(hog)),
            std::string::npos);
}

TEST(Shell, FullMigrationSessionFromTheShell) {
  // The Section 4.2 interaction, typed into shells on two machines.
  World world;
  const int32_t sh_brick = StartShell(world, "brick");
  ASSERT_TRUE(world.RunUntilBlocked("brick", sh_brick));
  Command(world, sh_brick, "cd /u/user", "brick");  // a login shell's home
  Command(world, sh_brick, "counter &", "brick");
  const int32_t counter = world.FindPidByCommand("brick", "counter");
  ASSERT_GT(counter, 0);
  // The counter shares the console with the shell; its prompt appears too.
  ASSERT_TRUE(world.RunUntilBlocked("brick", counter));

  // dumpproc from brick's shell ("only ... the owner of the process can kill").
  Command(world, sh_brick, "dumpproc -p " + std::to_string(counter), "brick");
  ASSERT_TRUE(world.RunUntilExited("brick", counter));
  EXPECT_TRUE(world.ExitInfoOf("brick", counter).migration_dumped);

  // restart from schooner's shell, in the foreground: the shell hands the
  // terminal to the restored program and waits, exactly like a 1988 shell.
  const int32_t sh_schooner = StartShell(world, "schooner");
  ASSERT_TRUE(world.RunUntilBlocked("schooner", sh_schooner));
  world.console("schooner")->Type("restart -p " + std::to_string(counter) +
                                  " -h brick\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.FindPidByCommand("schooner", "migrated") > 0;
  }));
  const int32_t moved = world.FindPidByCommand("schooner", "migrated");
  ASSERT_TRUE(world.RunUntilBlocked("schooner", moved));
  world.console("schooner")->Type("onward\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("schooner")->PlainOutput().find("r=2 s=2 k=2") !=
           std::string::npos;
  }));
  EXPECT_EQ(world.FileContents("brick", "/u/user/counter.out"), "onward\n");
  // The shell is still dutifully waiting on its foreground job; killing the
  // migrated program brings the prompt back.
  kernel::Proc* sh_proc = world.host("schooner").FindProc(sh_schooner);
  ASSERT_NE(sh_proc, nullptr);
  EXPECT_TRUE(sh_proc->Alive());
  const size_t prompts = PromptCount(world, "schooner");
  ASSERT_TRUE(world.host("schooner").PostSignal(moved, vm::abi::kSigKill, nullptr).ok());
  ASSERT_TRUE(world.cluster().RunUntil(
      [&] { return PromptCount(world, "schooner") > prompts; }));
}

}  // namespace
}  // namespace pmig
