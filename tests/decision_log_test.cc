// The placement decision audit log: ring bookkeeping, the evidence each pick
// records (candidates, exclusions, runner-up, margin), outcome attachment,
// the pwhy shell surface, and the two load-bearing invariants — every
// committed balancer migration leaves exactly one decision record, and an
// armed-but-unread log leaves a run bit-identical to one with the log off.

#include "src/apps/decision_log.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/load_balancer.h"
#include "src/apps/placement.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using apps::DecisionLog;
using apps::DecisionRecord;
using test::kUserUid;
using test::World;
using test::WorldOptions;

DecisionRecord MakeRecord(const std::string& chosen, int32_t pid = 1) {
  DecisionRecord r;
  r.context = "test";
  r.policy = "load-only";
  r.source = "scan";
  r.from_host = "brick";
  r.pid = pid;
  r.chosen = chosen;
  return r;
}

TEST(DecisionLogUnit, RingEvictsOldestAndSeqKeepsClimbing) {
  sim::VirtualClock clock;
  DecisionLog log(&clock, /*capacity=*/2);
  EXPECT_FALSE(log.enabled());
  EXPECT_EQ(log.Record(MakeRecord("schooner")), 0u);  // disarmed: dropped
  EXPECT_EQ(log.records().size(), 0u);

  log.set_enabled(true);
  EXPECT_EQ(log.Record(MakeRecord("a")), 1u);
  EXPECT_EQ(log.Record(MakeRecord("b")), 2u);
  EXPECT_EQ(log.Record(MakeRecord("c")), 3u);
  ASSERT_EQ(log.records().size(), 2u);  // "a" evicted
  EXPECT_EQ(log.records().front().chosen, "b");
  EXPECT_EQ(log.records().back().chosen, "c");
  EXPECT_EQ(log.records().front().seq, 2u);
  EXPECT_EQ(log.total_recorded(), 3u);  // eviction does not rewind the count
  ASSERT_NE(log.Latest(), nullptr);
  EXPECT_EQ(log.Latest()->chosen, "c");
}

TEST(DecisionLogUnit, AttachOutcomeFindsNewestOutcomelessMatch) {
  sim::VirtualClock clock;
  DecisionLog log(&clock);
  log.set_enabled(true);
  log.Record(MakeRecord("schooner", 42));  // a lease re-pick's abandoned first try
  log.Record(MakeRecord("brador", 42));    // the pick that was actually migrated
  log.AttachOutcome(42, "brick", "brador", 0, /*trace_id=*/7);
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records().front().outcome_rc, DecisionRecord::kNoOutcome);
  EXPECT_EQ(log.records().back().outcome_rc, 0);
  EXPECT_EQ(log.records().back().trace_id, 7u);

  // A second outcome for the same triple lands on the next outcome-less
  // record, never overwriting the one already settled.
  log.Record(MakeRecord("brador", 42));
  log.AttachOutcome(42, "brick", "brador", 3, 9);
  EXPECT_EQ(log.records().back().outcome_rc, 3);
  EXPECT_EQ(log.records()[1].outcome_rc, 0);
}

TEST(DecisionLogUnit, LookupsByPidAndHost) {
  sim::VirtualClock clock;
  DecisionLog log(&clock);
  log.set_enabled(true);
  DecisionRecord r1 = MakeRecord("schooner", 10);
  r1.exclusions.push_back({"brador", "down", 0});
  log.Record(std::move(r1));
  log.Record(MakeRecord("classic", 11));

  ASSERT_NE(log.LatestForPid(10), nullptr);
  EXPECT_EQ(log.LatestForPid(10)->chosen, "schooner");
  EXPECT_EQ(log.LatestForPid(99), nullptr);
  // Host lookup matches an excluded host too — that is the pwhy an operator
  // asks about a machine that keeps being passed over.
  ASSERT_NE(log.LatestForHost("brador"), nullptr);
  EXPECT_EQ(log.LatestForHost("brador")->chosen, "schooner");
  EXPECT_EQ(log.LatestForHost("nowhere"), nullptr);
}

// A direct engine pick against a booted cluster records the full evidence:
// both live candidates, the runner-up, and the dead-tie "order" margin.
TEST(DecisionLogEngine, RecordsCandidatesRunnerUpAndNearTie) {
  WorldOptions options;
  options.num_hosts = 3;
  options.decision_log = true;
  World world(options);
  apps::PlacementEngine engine(&world.cluster().network());
  apps::PlacementQuery query;
  query.from_host = "brick";
  query.context = "test";
  EXPECT_EQ(engine.PickTarget(query), "schooner");

  const DecisionLog& log = world.cluster().decision_log();
  ASSERT_EQ(log.records().size(), 1u);
  const DecisionRecord& r = log.records().front();
  EXPECT_EQ(r.context, "test");
  EXPECT_EQ(r.source, "scan");
  EXPECT_EQ(r.chosen, "schooner");
  EXPECT_EQ(r.runner_up, "brador");
  EXPECT_EQ(r.margin_factor, "order");  // equal loads: network order decided
  EXPECT_TRUE(r.near_tie);
  ASSERT_EQ(r.candidates.size(), 2u);
  EXPECT_TRUE(r.exclusions.empty());

  const std::string rendered = DecisionLog::Render(r);
  EXPECT_NE(rendered.find("NEAR-TIE"), std::string::npos);
  EXPECT_NE(rendered.find("schooner"), std::string::npos);
  EXPECT_NE(rendered.find("CHOSEN"), std::string::npos);
}

// Exclusion reasons, one per structural filter: a down host, a caller-excluded
// host, and a fault-demoted host (which keeps its candidate row — the scores
// that damned it stay visible).
TEST(DecisionLogEngine, ExclusionReasonsNameTheFilter) {
  WorldOptions options;
  options.num_hosts = 4;  // brick, schooner, brador, classic
  options.decision_log = true;
  World world(options);
  world.host("schooner").set_down(true);
  world.cluster().fault_history().RecordFailure("brador", Errno::kHostUnreach);

  apps::PlacementEngine engine(&world.cluster().network(),
                               apps::PlacementPolicy::kFaultAware);
  apps::PlacementQuery query;
  query.from_host = "brick";
  query.context = "test";
  query.exclude.push_back("classic");
  EXPECT_EQ(engine.PickTarget(query), "");  // everything was filtered out

  const DecisionLog& log = world.cluster().decision_log();
  ASSERT_EQ(log.records().size(), 1u);
  const DecisionRecord& r = log.records().front();
  EXPECT_EQ(r.margin_factor, "none");
  ASSERT_EQ(r.exclusions.size(), 3u);  // network order: schooner, brador, classic
  EXPECT_EQ(r.exclusions[0].host, "schooner");
  EXPECT_EQ(r.exclusions[0].reason, "down");
  EXPECT_EQ(r.exclusions[1].host, "brador");
  EXPECT_EQ(r.exclusions[1].reason, "fault-threshold");
  EXPECT_GT(r.exclusions[1].value, 0.0);
  EXPECT_EQ(r.exclusions[2].host, "classic");
  EXPECT_EQ(r.exclusions[2].reason, "lease-contended");
  // The fault-demoted host was scored before the threshold cut it, so its
  // candidate row survives alongside the exclusion.
  bool brador_scored = false;
  for (const auto& c : r.candidates) brador_scored |= c.host == "brador";
  EXPECT_TRUE(brador_scored);
}

// A partition the query opted into filtering shows up by name.
TEST(DecisionLogEngine, PartitionedCandidateIsNamed) {
  WorldOptions options;
  options.num_hosts = 3;
  options.decision_log = true;
  options.faults.enabled = true;
  sim::PartitionFault cut;
  cut.group_a = {"brador"};
  cut.begin = 0;
  cut.heal = -1;
  options.faults.partitions.push_back(cut);
  World world(options);
  world.cluster().RunFor(sim::Millis(1));  // let the partition arm

  apps::PlacementEngine engine(&world.cluster().network());
  apps::PlacementQuery query;
  query.from_host = "brick";
  query.context = "test";
  query.reachable_from = "brick";
  EXPECT_EQ(engine.PickTarget(query), "schooner");

  const DecisionRecord* r = world.cluster().decision_log().Latest();
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->exclusions.size(), 1u);
  EXPECT_EQ(r->exclusions[0].host, "brador");
  EXPECT_EQ(r->exclusions[0].reason, "partitioned-from-source");
}

// The balancer soak invariant: with the log armed, every committed migration
// has exactly one decision record carrying rc 0, the injected down host is
// excluded by name in every record, and the whole decision stream (plus its
// count) replays identically — the fingerprint the chaos suite folds in.
struct SoakOutcome {
  std::string fingerprint;
  int migrations = 0;
  int committed_records = 0;
  std::vector<std::string> down_exclusions;
};

SoakOutcome RunBalancerSoak() {
  WorldOptions options;
  options.num_hosts = 3;
  options.daemons = true;
  options.metrics = true;
  options.decision_log = true;
  World world(options);
  world.host("schooner").set_down(true);  // the injected fault
  for (int i = 0; i < 4; ++i) {
    world.StartVm("brick", "/bin/hog", {"hog", "4000000"});
  }
  world.cluster().RunFor(sim::Seconds(3));

  net::Network* net = &world.cluster().network();
  auto stats = std::make_shared<apps::LoadBalancerStats>();
  const int32_t balancer = world.host("brick").SpawnNative(
      "balancer",
      [net, stats](kernel::SyscallApi& api) {
        apps::LoadBalancerOptions lb;
        lb.poll_interval = sim::Seconds(2);
        lb.min_age = sim::Seconds(1);
        lb.max_rounds = 8;
        *stats = apps::RunLoadBalancer(api, *net, lb);
        return 0;
      },
      kernel::SpawnOptions{});
  EXPECT_TRUE(world.RunUntilExited("brick", balancer, sim::Seconds(600)));

  SoakOutcome out;
  out.migrations = stats->migrations;
  const DecisionLog& log = world.cluster().decision_log();
  std::ostringstream fp;
  fp << "n=" << log.total_recorded() << ";clock=" << world.cluster().clock().now()
     << ";";
  for (const DecisionRecord& r : log.records()) {
    fp << DecisionLog::CanonicalLine(r) << "\n";
    if (r.outcome_rc == 0) ++out.committed_records;
    for (const auto& e : r.exclusions) {
      if (e.reason == "down") out.down_exclusions.push_back(e.host);
    }
  }
  out.fingerprint = fp.str();
  return out;
}

TEST(DecisionLogSoak, EveryCommittedLegHasExactlyOneRecordAndReplays) {
  const SoakOutcome a = RunBalancerSoak();
  EXPECT_GT(a.migrations, 0);
  // Exactly one rc==0 record per committed migration: AttachOutcome settles
  // the final pick of each leg and nothing else.
  EXPECT_EQ(a.committed_records, a.migrations);
  // The injected fault shows up as a named exclusion in every pick.
  EXPECT_FALSE(a.down_exclusions.empty());
  for (const std::string& host : a.down_exclusions) EXPECT_EQ(host, "schooner");

  const SoakOutcome b = RunBalancerSoak();
  EXPECT_EQ(a.fingerprint, b.fingerprint);  // decisions fold into the replay
}

// Armed-but-unread must be bit-identical to log-off: same balancer decisions,
// same virtual clock, same total CPU.
TEST(DecisionLogSoak, ArmedButUnreadIsBitIdentical) {
  struct RunResult {
    std::string decisions;
    sim::Nanos clock = 0;
    sim::Nanos cpu = 0;
  };
  const auto run = [](bool armed) {
    WorldOptions options;
    options.num_hosts = 3;
    options.daemons = true;
    options.metrics = true;
    options.decision_log = armed;
    World world(options);
    for (int i = 0; i < 4; ++i) {
      world.StartVm("brick", "/bin/hog", {"hog", "4000000"});
    }
    world.cluster().RunFor(sim::Seconds(3));
    net::Network* net = &world.cluster().network();
    auto stats = std::make_shared<apps::LoadBalancerStats>();
    const int32_t balancer = world.host("brick").SpawnNative(
        "balancer",
        [net, stats](kernel::SyscallApi& api) {
          apps::LoadBalancerOptions lb;
          lb.poll_interval = sim::Seconds(2);
          lb.min_age = sim::Seconds(1);
          lb.max_rounds = 8;
          *stats = apps::RunLoadBalancer(api, *net, lb);
          return 0;
        },
        kernel::SpawnOptions{});
    EXPECT_TRUE(world.RunUntilExited("brick", balancer, sim::Seconds(600)));
    return RunResult{stats->decisions, world.cluster().clock().now(),
                     world.cluster().TotalCpu()};
  };
  const RunResult off = run(false);
  const RunResult on = run(true);
  EXPECT_EQ(off.decisions, on.decisions);
  EXPECT_EQ(off.clock, on.clock);
  EXPECT_EQ(off.cpu, on.cpu);
}

// --- pwhy, driven through the shell ---

size_t PromptCount(World& world, std::string_view host) {
  const std::string out = world.console(host)->PlainOutput();
  size_t count = 0;
  for (size_t at = out.find("$ "); at != std::string::npos;
       at = out.find("$ ", at + 2)) {
    ++count;
  }
  return count;
}

void Command(World& world, std::string_view host, const std::string& line) {
  const size_t before = PromptCount(world, host);
  world.console(host)->Type(line + "\n");
  ASSERT_TRUE(world.cluster().RunUntil(
      [&world, host, before] { return PromptCount(world, host) > before; }))
      << line;
}

TEST(Pwhy, NamesTheExcludingFactorForAFaultDemotedHost) {
  WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  options.decision_log = true;
  World world(options);
  world.cluster().fault_history().RecordFailure("schooner", Errno::kHostUnreach);

  apps::PlacementEngine engine(&world.cluster().network(),
                               apps::PlacementPolicy::kFaultAware);
  apps::PlacementQuery query;
  query.from_host = "brick";
  query.context = "test";
  EXPECT_EQ(engine.PickTarget(query), "brador");

  const int32_t shell =
      world.StartTool("brick", "sh", {}, kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilBlocked("brick", shell));
  Command(world, "brick", "pwhy schooner");
  const std::string out = world.console("brick")->PlainOutput();
  EXPECT_NE(out.find("fault-threshold"), std::string::npos) << out;
  EXPECT_NE(out.find("excluded"), std::string::npos);

  // pwhy last renders the same decision; pwhy <pid> misses (no pid was set).
  Command(world, "brick", "pwhy last");
  EXPECT_NE(world.console("brick")->PlainOutput().find("decision #1"),
            std::string::npos);
  Command(world, "brick", "pwhy 424242");
  EXPECT_NE(world.console("brick")->PlainOutput().find("no decision recorded"),
            std::string::npos);

  // pstat surfaces the placement counters even at zero.
  Command(world, "brick", "pstat");
  EXPECT_NE(world.console("brick")->PlainOutput().find("placement: survey_msgs="),
            std::string::npos);
}

TEST(Pwhy, DisabledLogSaysSo) {
  World world;  // defaults: no decision log
  const int32_t shell =
      world.StartTool("brick", "sh", {}, kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilBlocked("brick", shell));
  Command(world, "brick", "pwhy");
  EXPECT_NE(world.console("brick")->PlainOutput().find("decision log disabled"),
            std::string::npos);
}

// The report surfaces: one meta line (fingerprint + armed flags) and one
// decision line per record, and CanonicalLine stays stable across index/scan.
TEST(DecisionLogReport, MetaAndDecisionLinesAppear) {
  WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  options.decision_log = true;
  World world(options);
  apps::PlacementEngine engine(&world.cluster().network());
  apps::PlacementQuery query;
  query.from_host = "brick";
  query.context = "test";
  EXPECT_EQ(engine.PickTarget(query), "schooner");

  std::ostringstream report;
  world.cluster().WriteReport(report);
  const std::string text = report.str();
  EXPECT_NE(text.find("\"type\":\"meta\""), std::string::npos);
  EXPECT_NE(text.find("\"config_fingerprint\":\""), std::string::npos);
  EXPECT_NE(text.find("\"decision_log\":true"), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"decision\""), std::string::npos);
  EXPECT_NE(text.find("\"ctx\":\"test\""), std::string::npos);
  EXPECT_NE(text.find("\"chosen\":\"schooner\""), std::string::npos);
}

}  // namespace
}  // namespace pmig
