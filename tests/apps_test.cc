// The Section 8 applications: checkpointing, load balancing, night shift.

#include <gtest/gtest.h>

#include "src/apps/checkpoint.h"
#include "src/apps/load_balancer.h"
#include "src/apps/night_shift.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using kernel::SyscallApi;
using test::kUserUid;
using test::World;
using test::WorldOptions;

// Runs `fn` as root (system software) on `host`; returns its exit code.
int RunSystem(World& world, std::string_view host, kernel::NativeTask::Entry fn) {
  kernel::SpawnOptions opts;  // root, with a terminal for tty reopens
  opts.tty = world.console(host);
  opts.cwd = "/";
  const int32_t pid = world.host(host).SpawnNative("system", std::move(fn), opts);
  world.RunUntilExited(host, pid, sim::Seconds(1200));
  return world.ExitInfoOf(host, pid).exit_code;
}

// --- Checkpointing ---

TEST(Checkpoint, TakeRestartsProcessUnderNewPid) {
  World world;
  world.host("brick").vfs().SetupMkdirAll("/ckpt");
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("one\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  auto new_pid = std::make_shared<int32_t>(0);
  const int code = RunSystem(world, "brick", [pid, new_pid](SyscallApi& api) {
    const Result<apps::CheckpointResult> r = apps::TakeCheckpoint(api, pid, "/ckpt", 0);
    if (!r.ok()) return 1;
    *new_pid = r->new_pid;
    return 0;
  });
  ASSERT_EQ(code, 0);
  ASSERT_GT(*new_pid, 0);
  EXPECT_NE(*new_pid, pid);

  // Checkpoint artifacts exist.
  for (const char* name : {"0.meta", "0.aout", "0.files", "0.stack", "0.open3"}) {
    EXPECT_TRUE(world.FileExists("brick", std::string("/ckpt/") + name)) << name;
  }
  // The staging dump files were tidied away.
  EXPECT_FALSE(world.FileExists("brick", "/usr/tmp/a.out" + std::to_string(pid)));

  // The process continues where it was.
  ASSERT_TRUE(world.RunUntilBlocked("brick", *new_pid));
  world.console("brick")->Type("two\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("brick")->PlainOutput().find("r=3 s=3 k=3") != std::string::npos;
  }));
}

TEST(Checkpoint, RestoreRollsBackProcessAndFiles) {
  World world;
  world.host("brick").vfs().SetupMkdirAll("/ckpt");
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("before\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  // Checkpoint at counters == 2, output file == "before\n".
  auto pid_after_ckpt = std::make_shared<int32_t>(0);
  ASSERT_EQ(RunSystem(world, "brick",
                      [pid, pid_after_ckpt](SyscallApi& api) {
                        const auto r = apps::TakeCheckpoint(api, pid, "/ckpt", 0);
                        if (!r.ok()) return 1;
                        *pid_after_ckpt = r->new_pid;
                        return 0;
                      }),
            0);

  // Let the program advance past the checkpoint, modifying its output file.
  ASSERT_TRUE(world.RunUntilBlocked("brick", *pid_after_ckpt));
  world.console("brick")->Type("after\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", *pid_after_ckpt));
  EXPECT_EQ(world.FileContents("brick", "/u/user/counter.out"), "before\nafter\n");
  // Kill it ("system crash").
  ASSERT_TRUE(world.host("brick").PostSignal(*pid_after_ckpt, vm::abi::kSigKill, nullptr).ok());
  ASSERT_TRUE(world.RunUntilExited("brick", *pid_after_ckpt));

  // Restore checkpoint 0: the open-file copy must roll counter.out back.
  auto restored_pid = std::make_shared<int32_t>(0);
  ASSERT_EQ(RunSystem(world, "brick",
                      [restored_pid](SyscallApi& api) {
                        const Result<int32_t> r = apps::RestoreCheckpoint(api, "/ckpt", 0);
                        if (!r.ok()) return 1;
                        *restored_pid = *r;
                        return 0;
                      }),
            0);
  EXPECT_EQ(world.FileContents("brick", "/u/user/counter.out"), "before\n");

  // And the program resumes from the checkpointed state: next input makes 3.
  ASSERT_TRUE(world.RunUntilBlocked("brick", *restored_pid));
  world.console("brick")->ClearOutput();  // "r=3" already appeared pre-rollback
  world.console("brick")->Type("resumed\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("brick")->PlainOutput().find("r=3 s=3 k=3") != std::string::npos;
  }));
  EXPECT_EQ(world.FileContents("brick", "/u/user/counter.out"), "before\nresumed\n");
}

TEST(Checkpoint, DaemonTakesPeriodicSnapshots) {
  World world;
  world.host("brick").vfs().SetupMkdirAll("/ckpt");
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  const int taken = RunSystem(world, "brick", [pid](SyscallApi& api) {
    apps::CheckpointdOptions options;
    options.pid = pid;
    options.dir = "/ckpt";
    options.interval = sim::Seconds(5);
    options.count = 3;
    return apps::CheckpointDaemon(api, options);
  });
  EXPECT_EQ(taken, 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(world.FileExists("brick", "/ckpt/" + std::to_string(i) + ".aout")) << i;
  }
}

TEST(Checkpoint, FailsForMissingProcess) {
  World world;
  world.host("brick").vfs().SetupMkdirAll("/ckpt");
  const int code = RunSystem(world, "brick", [](SyscallApi& api) {
    return apps::TakeCheckpoint(api, 987654, "/ckpt", 0).ok() ? 0 : 1;
  });
  EXPECT_EQ(code, 1);
}

// --- Load balancing ---

TEST(LoadBalancer, SurveysRunnableVmProcs) {
  World world;
  world.StartVm("brick", "/bin/hog", {"hog", "4000000"});
  world.StartVm("brick", "/bin/hog", {"hog", "4000000"});
  world.cluster().RunFor(sim::Millis(50));
  auto loads = apps::SurveyLoad(world.cluster().network());
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0], (std::pair<std::string, int>{"brick", 2}));
  EXPECT_EQ(loads[1], (std::pair<std::string, int>{"schooner", 0}));
}

TEST(LoadBalancer, MovesJobsFromBusyToIdle) {
  WorldOptions options;
  options.num_hosts = 2;
  options.daemons = true;
  World world(options);
  // Four CPU hogs all on brick; schooner idle.
  for (int i = 0; i < 4; ++i) {
    world.StartVm("brick", "/bin/hog", {"hog", "4000000"});
  }
  world.cluster().RunFor(sim::Seconds(6));  // let them age past min_age

  apps::LoadBalancerStats stats;
  net::Network* net = &world.cluster().network();
  RunSystem(world, "brick", [net, &stats](SyscallApi& api) {
    apps::LoadBalancerOptions options;
    options.poll_interval = sim::Seconds(2);
    options.min_age = sim::Seconds(2);
    options.max_rounds = 6;
    stats = apps::RunLoadBalancer(api, *net, options);
    return 0;
  });
  EXPECT_GE(stats.migrations, 1);
  // The cluster ended up balanced: 2 + 2 (migrated jobs keep running).
  auto loads = apps::SurveyLoad(*net);
  int brick_load = loads[0].second, schooner_load = loads[1].second;
  EXPECT_LE(std::abs(brick_load - schooner_load), 1);
  EXPECT_EQ(brick_load + schooner_load, 4);
}

TEST(LoadBalancer, ImprovesMakespanForUnbalancedLoad) {
  // The headline claim of the application: distributing CPU hogs finishes the
  // batch sooner than leaving them stacked on one machine.
  auto run = [](bool balance) {
    WorldOptions options;
    options.daemons = true;
    World world(options);
    std::vector<int32_t> pids;
    for (int i = 0; i < 4; ++i) {
      pids.push_back(world.StartVm("brick", "/bin/hog", {"hog", "2000000"}));
    }
    if (balance) {
      net::Network* net = &world.cluster().network();
      kernel::SpawnOptions opts;
      world.host("brick").SpawnNative("balancer",
                                      [net](SyscallApi& api) {
                                        apps::LoadBalancerOptions lb;
                                        lb.poll_interval = sim::Seconds(2);
                                        lb.min_age = sim::Seconds(1);
                                        lb.max_rounds = 50;
                                        apps::RunLoadBalancer(api, *net, lb);
                                        return 0;
                                      },
                                      opts);
    }
    world.cluster().RunUntil(
        [&] {
          for (const int32_t pid : pids) {
            // Jobs may have moved; survey both hosts by uid instead.
            (void)pid;
          }
          for (const auto& host : world.cluster().hosts()) {
            for (kernel::Proc* p : host->ListProcs()) {
              if (p->kind == kernel::ProcKind::kVm && p->creds.uid == kUserUid &&
                  p->Alive()) {
                return false;
              }
            }
          }
          return true;
        },
        sim::Seconds(600));
    return world.cluster().clock().now();
  };
  const sim::Nanos stacked = run(false);
  const sim::Nanos balanced = run(true);
  EXPECT_LT(balanced, stacked);
  EXPECT_LT(balanced, stacked * 3 / 4);  // clearly better, not marginally
}

// --- Night shift ---

TEST(NightShift, SpreadsAtDuskGathersAtDawn) {
  WorldOptions options;
  options.num_hosts = 3;
  options.daemons = true;
  World world(options);
  // Six batch jobs (uid 999) submitted on brick.
  kernel::Kernel& brick = world.host("brick");
  for (int i = 0; i < 6; ++i) {
    kernel::SpawnOptions opts;
    opts.creds = {999, 99, 999, 99};
    opts.tty = nullptr;
    opts.cwd = "/tmp";
    const Result<int32_t> pid = brick.SpawnVm("/bin/hog", {"hog", "40000000"}, opts);
    ASSERT_TRUE(pid.ok());
  }

  apps::NightShiftStats stats;
  net::Network* net = &world.cluster().network();
  RunSystem(world, "brick", [net, &stats](SyscallApi& api) {
    apps::NightShiftOptions options;
    options.day_host = "brick";
    options.night_length = sim::Seconds(30);
    options.nights = 1;
    stats = apps::RunNightShift(api, *net, options);
    return 0;
  });
  EXPECT_EQ(stats.nights_run, 1);
  EXPECT_EQ(stats.spread_migrations, 4);   // 6 jobs, fair share 2 stay home
  EXPECT_EQ(stats.gather_migrations, 4);   // all come home at dawn
  // After dawn every surviving batch job is back on brick.
  EXPECT_EQ(apps::BatchJobsOn(world.host("schooner"), 999).size(), 0u);
  EXPECT_EQ(apps::BatchJobsOn(world.host("brador"), 999).size(), 0u);
  EXPECT_EQ(apps::BatchJobsOn(brick, 999).size(), 6u);
}

}  // namespace
}  // namespace pmig
