// Dump-file format tests: the paper's magic numbers, round trips, corruption.

#include "src/core/dump_format.h"

#include <gtest/gtest.h>

#include "src/kernel/core_file.h"

namespace pmig::core {
namespace {

FilesFile SampleFiles() {
  FilesFile f;
  f.host = "brick";
  f.cwd = "/n/brick/u/user";
  f.entries[0].kind = FilesEntry::Kind::kFile;
  f.entries[0].path = "/dev/tty";
  f.entries[0].flags = vm::abi::kORdWr;
  f.entries[0].offset = 0;
  f.entries[3].kind = FilesEntry::Kind::kFile;
  f.entries[3].path = "/n/brick/u/user/counter.out";
  f.entries[3].flags = vm::abi::kOWrOnly | vm::abi::kOAppend;
  f.entries[3].offset = 123;
  f.entries[5].kind = FilesEntry::Kind::kSocket;
  f.had_tty = true;
  f.tty_flags = vm::abi::kTtyRaw;
  return f;
}

TEST(FilesFile, MagicIsOctal445) { EXPECT_EQ(kFilesMagic, 0445u); }
TEST(StackFile, MagicIsOctal444) { EXPECT_EQ(kStackMagic, 0444u); }

TEST(FilesFile, RoundTrip) {
  const FilesFile f = SampleFiles();
  const Result<FilesFile> back = FilesFile::Parse(f.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->host, "brick");
  EXPECT_EQ(back->cwd, "/n/brick/u/user");
  EXPECT_EQ(back->entries[0].kind, FilesEntry::Kind::kFile);
  EXPECT_EQ(back->entries[0].path, "/dev/tty");
  EXPECT_EQ(back->entries[3].offset, 123);
  EXPECT_EQ(back->entries[3].flags, vm::abi::kOWrOnly | vm::abi::kOAppend);
  EXPECT_EQ(back->entries[5].kind, FilesEntry::Kind::kSocket);
  EXPECT_TRUE(back->entries[5].path.empty());  // sockets carry no extra info
  EXPECT_EQ(back->entries[7].kind, FilesEntry::Kind::kUnused);
  EXPECT_TRUE(back->had_tty);
  EXPECT_EQ(back->tty_flags, vm::abi::kTtyRaw);
}

TEST(FilesFile, RejectsBadMagic) {
  std::string bytes = SampleFiles().Serialize();
  bytes[0] ^= 0x01;
  EXPECT_EQ(FilesFile::Parse(bytes).error(), Errno::kNoExec);
}

TEST(FilesFile, RejectsTruncation) {
  const std::string bytes = SampleFiles().Serialize();
  for (const size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{5}}) {
    EXPECT_FALSE(FilesFile::Parse(bytes.substr(0, cut)).ok()) << cut;
  }
}

StackFile SampleStack() {
  StackFile s;
  s.creds = {100, 10, 100, 10};
  s.stack = {1, 2, 3, 4, 5, 6, 7, 8};
  s.cpu.regs[0] = -1;
  s.cpu.regs[5] = 42;
  s.cpu.pc = 64;
  s.cpu.sp = vm::kStackTop - 8;
  s.sig_dispositions[vm::abi::kSigUsr1].action = kernel::SignalDisposition::Action::kCatch;
  s.sig_dispositions[vm::abi::kSigUsr1].handler = 128;
  s.sig_dispositions[vm::abi::kSigInt].action = kernel::SignalDisposition::Action::kIgnore;
  s.sig_pending = 1u << vm::abi::kSigHup;
  s.old_pid = 1234;
  s.old_host = "brick";
  s.trace_id = 77;
  return s;
}

TEST(StackFile, RoundTrip) {
  const StackFile s = SampleStack();
  const Result<StackFile> back = StackFile::Parse(s.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->creds, (kernel::Credentials{100, 10, 100, 10}));
  EXPECT_EQ(back->stack, s.stack);
  EXPECT_EQ(back->stack_size(), 8u);
  EXPECT_EQ(back->cpu, s.cpu);
  EXPECT_EQ(back->sig_dispositions[vm::abi::kSigUsr1].action,
            kernel::SignalDisposition::Action::kCatch);
  EXPECT_EQ(back->sig_dispositions[vm::abi::kSigUsr1].handler, 128u);
  EXPECT_EQ(back->sig_pending, 1u << vm::abi::kSigHup);
  EXPECT_EQ(back->old_pid, 1234);
  EXPECT_EQ(back->old_host, "brick");
  EXPECT_EQ(back->trace_id, 77u);
}

// The trace id is a fixed 8-byte slot, so stamping a dump with a trace context
// never changes its size — the DiskIo/network cost of a traced migration is
// byte-for-byte the cost of an untraced one.
TEST(StackFile, TraceIdDoesNotChangeDumpSize) {
  StackFile traced = SampleStack();
  StackFile untraced = SampleStack();
  untraced.trace_id = 0;
  EXPECT_EQ(traced.Serialize().size(), untraced.Serialize().size());
  const Result<StackFile> back = StackFile::Parse(untraced.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->trace_id, 0u);
}

TEST(StackFile, RejectsBadMagic) {
  std::string bytes = SampleStack().Serialize();
  bytes[1] ^= 0xFF;
  EXPECT_EQ(StackFile::Parse(bytes).error(), Errno::kNoExec);
}

TEST(StackFile, RejectsTruncation) {
  const std::string bytes = SampleStack().Serialize();
  EXPECT_FALSE(StackFile::Parse(bytes.substr(0, bytes.size() - 3)).ok());
}

TEST(StackFile, RejectsUnknownVersion) {
  std::string bytes = SampleStack().Serialize();
  bytes[4] = 99;  // version field follows the magic
  EXPECT_EQ(StackFile::Parse(bytes).error(), Errno::kNoExec);
}

TEST(DumpPaths, NamesFollowThePaper) {
  const DumpPaths p = DumpPaths::For(1234);
  EXPECT_EQ(p.aout, "/usr/tmp/a.out1234");
  EXPECT_EQ(p.files, "/usr/tmp/files1234");
  EXPECT_EQ(p.stack, "/usr/tmp/stack1234");
  const DumpPaths q = DumpPaths::For(7, "/n/brick/usr/tmp");
  EXPECT_EQ(q.aout, "/n/brick/usr/tmp/a.out7");
}

TEST(CoreFile, RoundTrip) {
  kernel::CoreFile core;
  core.cpu.regs[2] = 5;
  core.cpu.pc = 16;
  core.cpu.sp = vm::kStackTop - 24;
  core.data = {9, 9, 9};
  core.stack = {1, 2};
  const Result<kernel::CoreFile> back = kernel::CoreFile::Parse(core.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->cpu, core.cpu);
  EXPECT_EQ(back->data, core.data);
  EXPECT_EQ(back->stack, core.stack);
}

TEST(CoreFile, RejectsGarbage) {
  EXPECT_FALSE(kernel::CoreFile::Parse("not a core").ok());
  EXPECT_FALSE(kernel::CoreFile::Parse("").ok());
}

}  // namespace
}  // namespace pmig::core
