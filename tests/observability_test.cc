// Observability layer: the metrics registry, phase spans, the cluster run
// report, and the load balancer's use of the scheduler gauge.
//
// The acceptance property is the paper's own framing turned into an assertion:
// a remote-to-remote migrate's per-phase breakdown (signal, dump, setup,
// transfer, restart, plus unattributed "other") must sum to the end-to-end
// migrate time exactly — spans nest on one virtual timeline, so self times
// partition the total.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/load_balancer.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/metrics.h"
#include "src/sim/span.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using test::World;
using test::WorldOptions;

TEST(MetricsRegistry, DisabledIsANoOp) {
  sim::MetricsRegistry m;
  EXPECT_FALSE(m.enabled());
  m.Inc("kernel.syscall.5");
  m.Set("sched.runnable_vm", 3);
  m.Observe("migration.dump_ns", sim::Millis(600));
  EXPECT_TRUE(m.counters().empty());
  EXPECT_TRUE(m.gauges().empty());
  EXPECT_TRUE(m.histograms().empty());
  EXPECT_EQ(m.Counter("kernel.syscall.5"), 0);
  EXPECT_EQ(m.Gauge("sched.runnable_vm"), 0);
  EXPECT_EQ(m.FindHistogram("migration.dump_ns"), nullptr);
}

TEST(MetricsRegistry, CountersGaugesHistograms) {
  sim::MetricsRegistry m;
  m.set_enabled(true);
  m.Inc("a");
  m.Inc("a", 4);
  m.Set("g", 7);
  m.Set("g", 2);  // gauges keep the last value
  m.Observe("h", sim::Millis(1));
  m.Observe("h", sim::Millis(3));
  EXPECT_EQ(m.Counter("a"), 5);
  EXPECT_EQ(m.Counter("never"), 0);
  EXPECT_EQ(m.Gauge("g"), 2);
  const sim::Histogram* h = m.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_EQ(h->sum, sim::Millis(4));
  EXPECT_EQ(h->min, sim::Millis(1));
  EXPECT_EQ(h->max, sim::Millis(3));
  EXPECT_EQ(h->Mean(), sim::Millis(2));
}

TEST(MetricsRegistry, MergeFromAggregates) {
  sim::MetricsRegistry a, b;
  a.set_enabled(true);
  b.set_enabled(true);
  a.Inc("c", 2);
  b.Inc("c", 3);
  b.Inc("only_b");
  a.Observe("h", sim::Millis(1));
  b.Observe("h", sim::Millis(9));
  sim::MetricsRegistry total;  // stays disabled: MergeFrom bypasses the gate
  total.MergeFrom(a);
  total.MergeFrom(b);
  EXPECT_EQ(total.Counter("c"), 5);
  EXPECT_EQ(total.Counter("only_b"), 1);
  const sim::Histogram* h = total.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_EQ(h->min, sim::Millis(1));
  EXPECT_EQ(h->max, sim::Millis(9));
}

TEST(MetricsRegistry, HistogramPercentiles) {
  sim::Histogram empty;
  // Every percentile of an empty histogram is 0, including the extremes.
  EXPECT_EQ(empty.Percentile(0), 0);
  EXPECT_EQ(empty.Percentile(50), 0);
  EXPECT_EQ(empty.Percentile(100), 0);

  sim::MetricsRegistry m;
  m.set_enabled(true);
  m.Observe("one", sim::Millis(5));
  const sim::Histogram* one = m.FindHistogram("one");
  ASSERT_NE(one, nullptr);
  // A single observation is every percentile: the log2-bucket estimate clamps
  // to the exact observed [min, max].
  EXPECT_EQ(one->Percentile(0), sim::Millis(5));
  EXPECT_EQ(one->Percentile(50), sim::Millis(5));
  EXPECT_EQ(one->Percentile(99), sim::Millis(5));
  EXPECT_EQ(one->Percentile(100), sim::Millis(5));

  m.Observe("two", sim::Millis(1));
  m.Observe("two", sim::Millis(100));
  const sim::Histogram* two = m.FindHistogram("two");
  ASSERT_NE(two, nullptr);
  // p50 lands in the low observation's bucket, p95 near the high one; estimates
  // stay inside the observed range and are monotone in p.
  EXPECT_GE(two->Percentile(50), sim::Millis(1));
  EXPECT_LT(two->Percentile(50), sim::Millis(2));
  EXPECT_GE(two->Percentile(95), sim::Millis(50));
  EXPECT_LE(two->Percentile(95), sim::Millis(100));
  // p0 pins to the observed min, p100 to the observed max, and the estimate is
  // monotone across the whole percentile chain in between.
  EXPECT_EQ(two->Percentile(0), two->min);
  EXPECT_EQ(two->Percentile(100), two->max);
  EXPECT_LE(two->Percentile(0), two->Percentile(50));
  EXPECT_LE(two->Percentile(50), two->Percentile(95));
  EXPECT_LE(two->Percentile(95), two->Percentile(99));
  EXPECT_LE(two->Percentile(99), two->Percentile(100));

  // A wider spread: monotone and range-clamped with many samples per bucket.
  for (int i = 1; i <= 64; ++i) m.Observe("many", sim::Millis(i));
  const sim::Histogram* many = m.FindHistogram("many");
  ASSERT_NE(many, nullptr);
  sim::Nanos prev = many->Percentile(0);
  EXPECT_EQ(prev, many->min);
  for (const int p : {10, 25, 50, 75, 90, 95, 99, 100}) {
    const sim::Nanos v = many->Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    EXPECT_GE(v, many->min) << "p" << p;
    EXPECT_LE(v, many->max) << "p" << p;
    prev = v;
  }
  EXPECT_EQ(many->Percentile(100), many->max);
}

TEST(SpanLog, DisabledBeginReturnsZero) {
  sim::VirtualClock clock;
  sim::SpanLog log(&clock, nullptr);
  EXPECT_EQ(log.Begin("dump", "brick", 1), 0u);
  log.End(0);  // must be a no-op
  EXPECT_TRUE(log.spans().empty());
}

TEST(SpanLog, NestedSelfTimesPartitionTheRoot) {
  sim::VirtualClock clock;
  sim::SpanLog log(&clock, nullptr);
  log.set_enabled(true);
  // migrate [0,100ms] containing dump [10,40] and restart [50,90].
  const uint64_t root = log.Begin("migrate", "brick", 1);
  clock.Advance(sim::Millis(10));
  const uint64_t dump = log.Begin("dump", "brick", 1);
  clock.Advance(sim::Millis(30));
  log.End(dump);
  clock.Advance(sim::Millis(10));
  const uint64_t restart = log.Begin("restart", "brick", 1);
  clock.Advance(sim::Millis(40));
  log.End(restart);
  clock.Advance(sim::Millis(10));
  log.End(root);

  const auto self = log.PhaseSelfTimes();
  EXPECT_EQ(self.at("dump"), sim::Millis(30));
  EXPECT_EQ(self.at("restart"), sim::Millis(40));
  EXPECT_EQ(self.at("migrate"), sim::Millis(30));  // 100 - 30 - 40
  sim::Nanos sum = 0;
  for (const auto& [phase, ns] : self) sum += ns;
  EXPECT_EQ(sum, log.Find(root)->duration());
}

TEST(SpanLog, SpanScopeIsNullSafe) {
  { sim::SpanScope scope(nullptr, "dump", "brick", 1); }
  sim::VirtualClock clock;
  sim::SpanLog log(&clock, nullptr);
  { sim::SpanScope scope(&log, "dump", "brick", 1); }  // disabled log
  EXPECT_TRUE(log.spans().empty());
}

// The acceptance test: remote-to-remote migrate, phase breakdown sums to the
// end-to-end time, and the written report carries the same numbers.
TEST(Observability, MigrationPhaseBreakdownSumsToEndToEnd) {
  WorldOptions options;
  options.num_hosts = 3;  // migrate typed on brick, schooner -> brador
  options.metrics = true;
  options.spans = true;
  World world(options);

  const int32_t pid = world.StartVm("schooner", "/bin/counter");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(world.RunUntilBlocked("schooner", pid));
  world.console("schooner")->Type("x\n");
  ASSERT_TRUE(world.RunUntilBlocked("schooner", pid));

  const int32_t mig = world.StartTool(
      "brick", "migrate", {"-p", std::to_string(pid), "-f", "schooner", "-t", "brador"},
      test::kUserUid, world.console("brick"));
  ASSERT_GT(mig, 0);
  ASSERT_TRUE(world.RunUntilExited("brick", mig));
  EXPECT_EQ(world.ExitInfoOf("brick", mig).exit_code, 0);
  EXPECT_GT(world.FindPidByCommand("brador", "migrated"), 0);

  // Exactly one end-to-end "migrate" span, closed.
  const sim::SpanLog& spans = world.cluster().spans();
  sim::Nanos end_to_end = 0;
  int roots = 0;
  for (const sim::SpanRecord& s : spans.spans()) {
    if (s.phase == "migrate") {
      EXPECT_TRUE(s.closed());
      end_to_end += s.duration();
      ++roots;
    }
  }
  EXPECT_EQ(roots, 1);
  EXPECT_GT(end_to_end, 0);

  // Every paper phase shows up, and self times partition the total exactly.
  const auto self = spans.PhaseSelfTimes();
  for (const char* phase : {"signal", "dump", "setup", "transfer", "restart"}) {
    ASSERT_TRUE(self.count(phase)) << phase;
    EXPECT_GT(self.at(phase), 0) << phase;
  }
  sim::Nanos phase_sum = 0;
  for (const auto& [phase, ns] : self) phase_sum += ns;
  EXPECT_EQ(phase_sum, end_to_end);

  // The source kernel counted the dump; rsh connections crossed the wire.
  EXPECT_EQ(world.host("schooner").metrics().Counter("migration.dumps_started"), 1);
  const sim::MetricsRegistry total = world.cluster().AggregateMetrics();
  EXPECT_GE(total.Counter("net.rsh_connections"), 2);  // dumpproc + restart legs
  EXPECT_GT(total.Counter("kernel.syscall.native"), 0);

  // The report is JSONL: every line a JSON object, with a phase_summary whose
  // total matches the end-to-end span time.
  std::ostringstream out;
  world.cluster().WriteReport(out);
  const std::string report = out.str();
  std::istringstream lines(report);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    ++n;
  }
  EXPECT_GT(n, 10);
  EXPECT_NE(report.find("\"type\":\"phase_summary\""), std::string::npos);
  EXPECT_NE(report.find("\"total_ns\":" + std::to_string(end_to_end)), std::string::npos);
  EXPECT_NE(report.find("\"dump\":" + std::to_string(self.at("dump"))), std::string::npos);
  EXPECT_NE(report.find("\"type\":\"span\""), std::string::npos);
  EXPECT_NE(report.find("migration.dumps_started"), std::string::npos);
}

// The tentpole acceptance test: a remote-to-remote migrate typed on a third
// machine is ONE distributed trace. Spans recorded by three different kernels
// carry the same minted trace id, the parent links assemble them into a single
// tree rooted at the migrate command, and the per-trace self times reproduce
// the root's end-to-end duration exactly.
TEST(Observability, CrossHostTraceAssemblesOneTree) {
  WorldOptions options;
  options.num_hosts = 3;  // migrate typed on brick, schooner -> brador
  options.metrics = true;
  options.spans = true;
  World world(options);

  const int32_t pid = world.StartVm("schooner", "/bin/counter");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(world.RunUntilBlocked("schooner", pid));
  world.console("schooner")->Type("x\n");
  ASSERT_TRUE(world.RunUntilBlocked("schooner", pid));

  const int32_t mig = world.StartTool(
      "brick", "migrate", {"-p", std::to_string(pid), "-f", "schooner", "-t", "brador"},
      test::kUserUid, world.console("brick"));
  ASSERT_GT(mig, 0);
  ASSERT_TRUE(world.RunUntilExited("brick", mig));
  EXPECT_EQ(world.ExitInfoOf("brick", mig).exit_code, 0);

  // One migrate mints exactly one trace id; the remote dumpproc and restart
  // legs inherit it instead of minting their own.
  const sim::SpanLog& spans = world.cluster().spans();
  const std::vector<uint64_t> ids = spans.TraceIds();
  ASSERT_EQ(ids.size(), 1u);
  const uint64_t trace = ids[0];
  EXPECT_GT(trace, 0u);

  // The trace crosses all three machines: home, source, destination.
  std::set<std::string> hosts_in_trace;
  for (const sim::SpanRecord& s : spans.spans()) {
    if (s.trace_id == trace && s.closed()) hosts_in_trace.insert(s.host);
  }
  EXPECT_EQ(hosts_in_trace.size(), 3u);

  const sim::SpanRecord* root = spans.TraceRoot(trace);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->phase, "migrate");
  EXPECT_EQ(root->host, "brick");
  EXPECT_GT(root->duration(), 0);

  // Self times over the cross-host tree partition the root exactly.
  const auto self = spans.TraceSelfTimes(trace);
  for (const char* phase : {"dump", "restart"}) {
    ASSERT_TRUE(self.count(phase)) << phase;
  }
  sim::Nanos sum = 0;
  for (const auto& [phase, ns] : self) sum += ns;
  EXPECT_EQ(sum, root->duration());

  // The run report carries a per-trace summary with the same numbers.
  std::ostringstream out;
  world.cluster().WriteReport(out);
  const std::string report = out.str();
  EXPECT_NE(report.find("\"type\":\"trace_summary\""), std::string::npos);
  EXPECT_NE(report.find("\"trace_id\":" + std::to_string(trace)), std::string::npos);
  EXPECT_NE(report.find("\"total_ns\":" + std::to_string(root->duration())),
            std::string::npos);
  EXPECT_NE(report.find("\"critical_path\":"), std::string::npos);
}

// A migrate into an unreachable host must leave a flight-recorder post-mortem
// whose trace id and failing phase match the complaint printed on the caller's
// terminal — the complaint greps straight to its post-mortem.
TEST(Observability, FlightRecorderDumpsOnHostUnreach) {
  WorldOptions options;
  options.num_hosts = 2;
  options.metrics = true;
  options.spans = true;
  options.flight_recorder = true;
  World world(options);

  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.cluster().SetHostDown("schooner", true);
  const int32_t mig = world.StartTool(
      "brick", "migrate", {"-p", std::to_string(pid), "-t", "schooner"});
  ASSERT_TRUE(world.RunUntilExited("brick", mig, sim::Seconds(300)));
  EXPECT_NE(world.ExitInfoOf("brick", mig).exit_code, 0);

  const sim::FlightRecorder& recorder = world.cluster().flight_recorder();
  ASSERT_FALSE(recorder.postmortems().empty());
  const sim::FlightRecorder::Postmortem& pm = recorder.postmortems().front();
  EXPECT_EQ(pm.host, "brick");
  EXPECT_GT(pm.trace_id, 0u);
  EXPECT_NE(pm.reason.find("phase=restart"), std::string::npos);
  EXPECT_FALSE(pm.jsonl.empty());
  EXPECT_FALSE(recorder.ring("brick").empty());

  const std::string tty = world.tty("brick", "ttyp0")->PlainOutput();
  EXPECT_NE(tty.find("EHOSTUNREACH"), std::string::npos);
  EXPECT_NE(tty.find("[trace=" + std::to_string(pm.trace_id) + " phase=restart]"),
            std::string::npos);

  // The run report summarises every post-mortem.
  std::ostringstream report;
  world.cluster().WriteReport(report);
  EXPECT_NE(report.str().find("\"type\":\"postmortem\""), std::string::npos);
}

// Integer field of a one-line JSON object, or -1 when absent. Good enough for
// the trace events this test generates (no nested objects before the key).
long long JsonField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return -1;
  return std::atoll(line.c_str() + pos + needle.size());
}

// The exported Chrome trace must be structurally sound: parseable line by
// line, every End matching an open Begin on its (process, thread) track, one
// named track per host, and at least one cross-host flow arrow pair.
TEST(Observability, ChromeTraceParsesAndBeginsMatchEnds) {
  WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  options.spans = true;
  options.flight_recorder = true;
  options.sample_period = sim::Millis(50);
  World world(options);

  const int32_t pid = world.StartVm("schooner", "/bin/counter");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(world.RunUntilBlocked("schooner", pid));
  world.console("schooner")->Type("x\n");
  ASSERT_TRUE(world.RunUntilBlocked("schooner", pid));
  const int32_t mig = world.StartTool(
      "brick", "migrate", {"-p", std::to_string(pid), "-f", "schooner", "-t", "brador"},
      test::kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilExited("brick", mig));
  EXPECT_EQ(world.ExitInfoOf("brick", mig).exit_code, 0);

  std::ostringstream trace_out;
  world.cluster().WriteChromeTrace(trace_out);
  std::istringstream lines(trace_out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  std::vector<std::string> events;
  bool closed = false;
  while (std::getline(lines, line)) {
    if (line == "]}") {
      closed = true;
      break;
    }
    if (!line.empty() && line.back() == ',') line.pop_back();
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    events.push_back(line);
  }
  EXPECT_TRUE(closed);
  EXPECT_FALSE(std::getline(lines, line));

  int process_names = 0;
  std::map<std::pair<long long, long long>, int> depth;
  long long flow_id = -1;
  bool flow_start = false, flow_finish = false;
  for (const std::string& e : events) {
    if (e.find("\"name\":\"process_name\"") != std::string::npos) {
      ++process_names;
      continue;
    }
    const auto track = std::make_pair(JsonField(e, "pid"), JsonField(e, "tid"));
    if (e.find("\"ph\":\"B\"") != std::string::npos) {
      ++depth[track];
    } else if (e.find("\"ph\":\"E\"") != std::string::npos) {
      ASSERT_GT(depth[track], 0) << "End without an open Begin: " << e;
      --depth[track];
    } else if (e.find("\"ph\":\"s\"") != std::string::npos) {
      flow_start = true;
      flow_id = JsonField(e, "id");
    } else if (e.find("\"ph\":\"f\"") != std::string::npos &&
               JsonField(e, "id") == flow_id) {
      flow_finish = e.find("\"bp\":\"e\"") != std::string::npos;
    }
  }
  EXPECT_EQ(process_names, 3);  // one named track per host
  for (const auto& [track, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced track pid=" << track.first << " tid=" << track.second;
  }
  EXPECT_TRUE(flow_start);
  EXPECT_TRUE(flow_finish);

  // The sampler took periodic snapshots, and the report carries them alongside
  // the histogram percentiles.
  EXPECT_FALSE(world.cluster().samples().empty());
  std::ostringstream report;
  world.cluster().WriteReport(report);
  EXPECT_NE(report.str().find("\"type\":\"sample\""), std::string::npos);
  EXPECT_NE(report.str().find("\"p50_ns\":"), std::string::npos);
}

// With metrics on, HostLoad reads the scheduler gauge; it must agree with a
// direct process-table scan (what the metrics-off fallback does).
TEST(Observability, HostLoadGaugeMatchesProcessTableScan) {
  WorldOptions options;
  options.num_hosts = 2;
  options.metrics = true;
  World world(options);
  for (int i = 0; i < 3; ++i) world.StartVm("brick", "/bin/hog", {"hog", "1000000"});
  world.cluster().RunFor(sim::Millis(50));

  for (const auto& host : world.cluster().hosts()) {
    int scanned = 0;
    for (kernel::Proc* p : host->ListProcs()) {
      if (p->kind == kernel::ProcKind::kVm && p->state == kernel::ProcState::kRunnable) {
        ++scanned;
      }
    }
    EXPECT_EQ(apps::HostLoad(*host), scanned) << host->hostname();
  }
  const auto loads = apps::SurveyLoad(world.cluster().network());
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0].first, "brick");
  EXPECT_GE(loads[0].second, 2);  // 3 hogs minus at most the one on cpu
  EXPECT_EQ(loads[1].second, 0);
}

}  // namespace
}  // namespace pmig
