// Observability layer: the metrics registry, phase spans, the cluster run
// report, and the load balancer's use of the scheduler gauge.
//
// The acceptance property is the paper's own framing turned into an assertion:
// a remote-to-remote migrate's per-phase breakdown (signal, dump, setup,
// transfer, restart, plus unattributed "other") must sum to the end-to-end
// migrate time exactly — spans nest on one virtual timeline, so self times
// partition the total.

#include <gtest/gtest.h>

#include <sstream>

#include "src/apps/load_balancer.h"
#include "src/sim/metrics.h"
#include "src/sim/span.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using test::World;
using test::WorldOptions;

TEST(MetricsRegistry, DisabledIsANoOp) {
  sim::MetricsRegistry m;
  EXPECT_FALSE(m.enabled());
  m.Inc("kernel.syscall.5");
  m.Set("sched.runnable_vm", 3);
  m.Observe("migration.dump_ns", sim::Millis(600));
  EXPECT_TRUE(m.counters().empty());
  EXPECT_TRUE(m.gauges().empty());
  EXPECT_TRUE(m.histograms().empty());
  EXPECT_EQ(m.Counter("kernel.syscall.5"), 0);
  EXPECT_EQ(m.Gauge("sched.runnable_vm"), 0);
  EXPECT_EQ(m.FindHistogram("migration.dump_ns"), nullptr);
}

TEST(MetricsRegistry, CountersGaugesHistograms) {
  sim::MetricsRegistry m;
  m.set_enabled(true);
  m.Inc("a");
  m.Inc("a", 4);
  m.Set("g", 7);
  m.Set("g", 2);  // gauges keep the last value
  m.Observe("h", sim::Millis(1));
  m.Observe("h", sim::Millis(3));
  EXPECT_EQ(m.Counter("a"), 5);
  EXPECT_EQ(m.Counter("never"), 0);
  EXPECT_EQ(m.Gauge("g"), 2);
  const sim::Histogram* h = m.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_EQ(h->sum, sim::Millis(4));
  EXPECT_EQ(h->min, sim::Millis(1));
  EXPECT_EQ(h->max, sim::Millis(3));
  EXPECT_EQ(h->Mean(), sim::Millis(2));
}

TEST(MetricsRegistry, MergeFromAggregates) {
  sim::MetricsRegistry a, b;
  a.set_enabled(true);
  b.set_enabled(true);
  a.Inc("c", 2);
  b.Inc("c", 3);
  b.Inc("only_b");
  a.Observe("h", sim::Millis(1));
  b.Observe("h", sim::Millis(9));
  sim::MetricsRegistry total;  // stays disabled: MergeFrom bypasses the gate
  total.MergeFrom(a);
  total.MergeFrom(b);
  EXPECT_EQ(total.Counter("c"), 5);
  EXPECT_EQ(total.Counter("only_b"), 1);
  const sim::Histogram* h = total.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_EQ(h->min, sim::Millis(1));
  EXPECT_EQ(h->max, sim::Millis(9));
}

TEST(SpanLog, DisabledBeginReturnsZero) {
  sim::VirtualClock clock;
  sim::SpanLog log(&clock, nullptr);
  EXPECT_EQ(log.Begin("dump", "brick", 1), 0u);
  log.End(0);  // must be a no-op
  EXPECT_TRUE(log.spans().empty());
}

TEST(SpanLog, NestedSelfTimesPartitionTheRoot) {
  sim::VirtualClock clock;
  sim::SpanLog log(&clock, nullptr);
  log.set_enabled(true);
  // migrate [0,100ms] containing dump [10,40] and restart [50,90].
  const uint64_t root = log.Begin("migrate", "brick", 1);
  clock.Advance(sim::Millis(10));
  const uint64_t dump = log.Begin("dump", "brick", 1);
  clock.Advance(sim::Millis(30));
  log.End(dump);
  clock.Advance(sim::Millis(10));
  const uint64_t restart = log.Begin("restart", "brick", 1);
  clock.Advance(sim::Millis(40));
  log.End(restart);
  clock.Advance(sim::Millis(10));
  log.End(root);

  const auto self = log.PhaseSelfTimes();
  EXPECT_EQ(self.at("dump"), sim::Millis(30));
  EXPECT_EQ(self.at("restart"), sim::Millis(40));
  EXPECT_EQ(self.at("migrate"), sim::Millis(30));  // 100 - 30 - 40
  sim::Nanos sum = 0;
  for (const auto& [phase, ns] : self) sum += ns;
  EXPECT_EQ(sum, log.Find(root)->duration());
}

TEST(SpanLog, SpanScopeIsNullSafe) {
  { sim::SpanScope scope(nullptr, "dump", "brick", 1); }
  sim::VirtualClock clock;
  sim::SpanLog log(&clock, nullptr);
  { sim::SpanScope scope(&log, "dump", "brick", 1); }  // disabled log
  EXPECT_TRUE(log.spans().empty());
}

// The acceptance test: remote-to-remote migrate, phase breakdown sums to the
// end-to-end time, and the written report carries the same numbers.
TEST(Observability, MigrationPhaseBreakdownSumsToEndToEnd) {
  WorldOptions options;
  options.num_hosts = 3;  // migrate typed on brick, schooner -> brador
  options.metrics = true;
  options.spans = true;
  World world(options);

  const int32_t pid = world.StartVm("schooner", "/bin/counter");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(world.RunUntilBlocked("schooner", pid));
  world.console("schooner")->Type("x\n");
  ASSERT_TRUE(world.RunUntilBlocked("schooner", pid));

  const int32_t mig = world.StartTool(
      "brick", "migrate", {"-p", std::to_string(pid), "-f", "schooner", "-t", "brador"},
      test::kUserUid, world.console("brick"));
  ASSERT_GT(mig, 0);
  ASSERT_TRUE(world.RunUntilExited("brick", mig));
  EXPECT_EQ(world.ExitInfoOf("brick", mig).exit_code, 0);
  EXPECT_GT(world.FindPidByCommand("brador", "migrated"), 0);

  // Exactly one end-to-end "migrate" span, closed.
  const sim::SpanLog& spans = world.cluster().spans();
  sim::Nanos end_to_end = 0;
  int roots = 0;
  for (const sim::SpanRecord& s : spans.spans()) {
    if (s.phase == "migrate") {
      EXPECT_TRUE(s.closed());
      end_to_end += s.duration();
      ++roots;
    }
  }
  EXPECT_EQ(roots, 1);
  EXPECT_GT(end_to_end, 0);

  // Every paper phase shows up, and self times partition the total exactly.
  const auto self = spans.PhaseSelfTimes();
  for (const char* phase : {"signal", "dump", "setup", "transfer", "restart"}) {
    ASSERT_TRUE(self.count(phase)) << phase;
    EXPECT_GT(self.at(phase), 0) << phase;
  }
  sim::Nanos phase_sum = 0;
  for (const auto& [phase, ns] : self) phase_sum += ns;
  EXPECT_EQ(phase_sum, end_to_end);

  // The source kernel counted the dump; rsh connections crossed the wire.
  EXPECT_EQ(world.host("schooner").metrics().Counter("migration.dumps_started"), 1);
  const sim::MetricsRegistry total = world.cluster().AggregateMetrics();
  EXPECT_GE(total.Counter("net.rsh_connections"), 2);  // dumpproc + restart legs
  EXPECT_GT(total.Counter("kernel.syscall.native"), 0);

  // The report is JSONL: every line a JSON object, with a phase_summary whose
  // total matches the end-to-end span time.
  std::ostringstream out;
  world.cluster().WriteReport(out);
  const std::string report = out.str();
  std::istringstream lines(report);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    ++n;
  }
  EXPECT_GT(n, 10);
  EXPECT_NE(report.find("\"type\":\"phase_summary\""), std::string::npos);
  EXPECT_NE(report.find("\"total_ns\":" + std::to_string(end_to_end)), std::string::npos);
  EXPECT_NE(report.find("\"dump\":" + std::to_string(self.at("dump"))), std::string::npos);
  EXPECT_NE(report.find("\"type\":\"span\""), std::string::npos);
  EXPECT_NE(report.find("migration.dumps_started"), std::string::npos);
}

// With metrics on, HostLoad reads the scheduler gauge; it must agree with a
// direct process-table scan (what the metrics-off fallback does).
TEST(Observability, HostLoadGaugeMatchesProcessTableScan) {
  WorldOptions options;
  options.num_hosts = 2;
  options.metrics = true;
  World world(options);
  for (int i = 0; i < 3; ++i) world.StartVm("brick", "/bin/hog", {"hog", "1000000"});
  world.cluster().RunFor(sim::Millis(50));

  for (const auto& host : world.cluster().hosts()) {
    int scanned = 0;
    for (kernel::Proc* p : host->ListProcs()) {
      if (p->kind == kernel::ProcKind::kVm && p->state == kernel::ProcState::kRunnable) {
        ++scanned;
      }
    }
    EXPECT_EQ(apps::HostLoad(*host), scanned) << host->hostname();
  }
  const auto loads = apps::SurveyLoad(world.cluster().network());
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0].first, "brick");
  EXPECT_GE(loads[0].second, 2);  // 3 hogs minus at most the one on cpu
  EXPECT_EQ(loads[1].second, 0);
}

}  // namespace
}  // namespace pmig
