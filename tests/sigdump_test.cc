// SIGDUMP: the three dump files, their contents, their timing, and undump.

#include <gtest/gtest.h>

#include "src/core/dump_format.h"
#include "src/core/test_programs.h"
#include "src/vm/aout.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using core::DumpPaths;
using core::FilesEntry;
using core::FilesFile;
using core::StackFile;
using test::kUserUid;
using test::World;

// Starts the counter on brick, feeds `lines`, leaves it blocked at its prompt.
int32_t StartCounter(World& world, int lines = 1) {
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  EXPECT_TRUE(world.RunUntilBlocked("brick", pid));
  for (int i = 0; i < lines; ++i) {
    world.console("brick")->Type("line " + std::to_string(i) + "\n");
    EXPECT_TRUE(world.RunUntilBlocked("brick", pid));
  }
  return pid;
}

// Dumps `pid` with a raw SIGDUMP and waits for completion.
void Sigdump(World& world, int32_t pid) {
  ASSERT_TRUE(world.host("brick").PostSignal(pid, vm::abi::kSigDump, nullptr).ok());
  ASSERT_TRUE(world.RunUntilExited("brick", pid));
  ASSERT_TRUE(world.ExitInfoOf("brick", pid).migration_dumped);
}

TEST(Sigdump, ProducesThreeWellFormedFiles) {
  World world;
  const int32_t pid = StartCounter(world);
  Sigdump(world, pid);
  const DumpPaths paths = DumpPaths::For(pid);

  // a.outXXXXX parses as an ordinary executable.
  const std::string aout = world.FileContents("brick", paths.aout);
  const Result<vm::AoutImage> image =
      vm::AoutImage::Parse(std::vector<uint8_t>(aout.begin(), aout.end()));
  ASSERT_TRUE(image.ok());
  EXPECT_GT(image->text.size(), 0u);
  EXPECT_GT(image->data.size(), 0u);

  // filesXXXXX has magic 0445 and knows host, cwd, tty modes.
  const Result<FilesFile> files =
      FilesFile::Parse(world.FileContents("brick", paths.files));
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->host, "brick");
  EXPECT_EQ(files->cwd, "/u/user");
  EXPECT_TRUE(files->had_tty);

  // stackXXXXX has magic 0444, the credentials, and a plausible stack.
  const Result<StackFile> stack =
      StackFile::Parse(world.FileContents("brick", paths.stack));
  ASSERT_TRUE(stack.ok());
  EXPECT_EQ(stack->creds.uid, kUserUid);
  EXPECT_GT(stack->stack_size(), 0u);
  EXPECT_EQ(stack->old_pid, pid);
  EXPECT_EQ(stack->old_host, "brick");
}

TEST(Sigdump, AoutCapturesLiveTextAndData) {
  World world;
  const int32_t pid = StartCounter(world, 2);
  kernel::Proc* p = world.host("brick").FindProc(pid);
  ASSERT_NE(p, nullptr);
  const std::vector<uint8_t> live_text = p->vm->text;
  const std::vector<uint8_t> live_data = p->vm->data;

  Sigdump(world, pid);
  const std::string aout = world.FileContents("brick", DumpPaths::For(pid).aout);
  const Result<vm::AoutImage> image =
      vm::AoutImage::Parse(std::vector<uint8_t>(aout.begin(), aout.end()));
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->text, live_text);
  EXPECT_EQ(image->data, live_data);  // statics at their values when killed
}

TEST(Sigdump, StackFileCapturesRegistersAndStack) {
  World world;
  const int32_t pid = StartCounter(world, 3);
  kernel::Proc* p = world.host("brick").FindProc(pid);
  ASSERT_NE(p, nullptr);
  const vm::CpuState live_cpu = p->vm->cpu;
  const std::vector<uint8_t> live_stack = p->vm->StackContents();

  Sigdump(world, pid);
  const Result<StackFile> stack =
      StackFile::Parse(world.FileContents("brick", DumpPaths::For(pid).stack));
  ASSERT_TRUE(stack.ok());
  EXPECT_EQ(stack->cpu.regs[5], 4);  // register counter: initial pass + 3 fed lines
  EXPECT_EQ(stack->cpu, live_cpu);
  EXPECT_EQ(stack->stack, live_stack);
}

TEST(Sigdump, RecordsOpenFilesWithOffsets) {
  World world;
  const int32_t pid = StartCounter(world, 2);  // wrote "line 0\nline 1\n" = 14 bytes
  Sigdump(world, pid);
  const Result<FilesFile> files =
      FilesFile::Parse(world.FileContents("brick", DumpPaths::For(pid).files));
  ASSERT_TRUE(files.ok());
  // fds 0..2: the terminal. fd 3: counter.out, opened append.
  EXPECT_EQ(files->entries[0].kind, FilesEntry::Kind::kFile);
  EXPECT_EQ(files->entries[0].path, "/dev/console");
  EXPECT_EQ(files->entries[3].kind, FilesEntry::Kind::kFile);
  EXPECT_EQ(files->entries[3].path, "/u/user/counter.out");
  EXPECT_EQ(files->entries[3].offset, 14);
  EXPECT_EQ(files->entries[4].kind, FilesEntry::Kind::kUnused);
}

TEST(Sigdump, MarksSocketsAsSockets) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/socketer");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  Sigdump(world, pid);
  const Result<FilesFile> files =
      FilesFile::Parse(world.FileContents("brick", DumpPaths::For(pid).files));
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->entries[3].kind, FilesEntry::Kind::kSocket);
  EXPECT_EQ(files->entries[4].kind, FilesEntry::Kind::kSocket);
}

TEST(Sigdump, RecordsTtyFlags) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/editor");  // sets raw mode
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  EXPECT_TRUE(world.console("brick")->raw());
  Sigdump(world, pid);
  const Result<FilesFile> files =
      FilesFile::Parse(world.FileContents("brick", DumpPaths::For(pid).files));
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->tty_flags & vm::abi::kTtyRaw, vm::abi::kTtyRaw);
}

TEST(Sigdump, FilesAppearOnlyWhenDumpCompletes) {
  World world;
  const int32_t pid = StartCounter(world);
  const DumpPaths paths = DumpPaths::For(pid);
  ASSERT_TRUE(world.host("brick").PostSignal(pid, vm::abi::kSigDump, nullptr).ok());
  // Immediately after delivery the dump is still being written.
  world.cluster().RunFor(sim::Millis(30));
  EXPECT_FALSE(world.FileExists("brick", paths.aout));
  kernel::Proc* p = world.host("brick").FindProc(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->Alive());  // dying, but not gone
  ASSERT_TRUE(world.RunUntilExited("brick", pid));
  EXPECT_TRUE(world.FileExists("brick", paths.aout));
}

TEST(Sigdump, SigKillDuringDumpAbortsIt) {
  World world;
  const int32_t pid = StartCounter(world);
  const DumpPaths paths = DumpPaths::For(pid);
  ASSERT_TRUE(world.host("brick").PostSignal(pid, vm::abi::kSigDump, nullptr).ok());
  world.cluster().RunFor(sim::Millis(30));
  ASSERT_TRUE(world.host("brick").PostSignal(pid, vm::abi::kSigKill, nullptr).ok());
  ASSERT_TRUE(world.RunUntilExited("brick", pid));
  world.cluster().RunFor(sim::Seconds(2));
  EXPECT_FALSE(world.FileExists("brick", paths.aout));  // dump never completed
  EXPECT_FALSE(world.ExitInfoOf("brick", pid).migration_dumped);
}

TEST(Sigdump, NativeProcessJustDies) {
  // The tools themselves are not migratable; SIGDUMP degenerates to a kill.
  World world;
  kernel::Kernel& k = world.host("brick");
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const int32_t pid = k.SpawnNative("sleeper",
                                    [](kernel::SyscallApi& api) {
                                      api.Sleep(sim::Seconds(1000));
                                      return 0;
                                    },
                                    opts);
  world.cluster().RunFor(sim::Millis(100));
  ASSERT_TRUE(k.PostSignal(pid, vm::abi::kSigDump, nullptr).ok());
  ASSERT_TRUE(world.RunUntilExited("brick", pid, sim::Seconds(30)));
  EXPECT_FALSE(world.ExitInfoOf("brick", pid).migration_dumped);
  EXPECT_FALSE(world.FileExists("brick", DumpPaths::For(pid).aout));
}

TEST(Sigdump, StockKernelTreatsSigdumpAsPlainKill) {
  // Without the migration hooks installed, SIGDUMP terminates without a dump.
  cluster::ClusterConfig config;
  config.hosts.push_back({"plain", vm::IsaLevel::kIsa20});
  cluster::Cluster plain(std::move(config));
  kernel::Kernel& k = plain.host("plain");
  core::InstallStandardPrograms(k);
  kernel::Tty* tty = k.CreateTty("console");
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.tty = tty;
  opts.cwd = "/tmp";
  const Result<int32_t> pid = k.SpawnVm("/bin/counter", {}, opts);
  ASSERT_TRUE(pid.ok());
  plain.RunUntil([&] {
    const kernel::Proc* p = k.FindProc(*pid);
    return p != nullptr && p->state == kernel::ProcState::kBlocked;
  });
  ASSERT_TRUE(k.PostSignal(*pid, vm::abi::kSigDump, nullptr).ok());
  plain.RunUntil([&] {
    const kernel::Proc* p = k.FindAnyProc(*pid);
    return p == nullptr || !p->Alive();
  });
  kernel::Proc* p = k.FindAnyProc(*pid);
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->exit_info.migration_dumped);
  EXPECT_EQ(p->exit_info.killed_by_signal, vm::abi::kSigDump);
}

// --- Undump: executable + core -> new executable (Section 4.3 aside) ---

TEST(Undump, CombinesAoutAndCore) {
  World world;
  const int32_t pid = StartCounter(world, 2);
  // SIGQUIT leaves a core in the cwd.
  ASSERT_TRUE(world.host("brick").PostSignal(pid, vm::abi::kSigQuit, nullptr).ok());
  ASSERT_TRUE(world.RunUntilExited("brick", pid));
  ASSERT_TRUE(world.FileExists("brick", "/u/user/core"));

  // undump /bin/counter /u/user/core /u/user/revived
  const int32_t ud = world.StartTool(
      "brick", "undump", {"/bin/counter", "/u/user/core", "/u/user/revived"});
  ASSERT_TRUE(world.RunUntilExited("brick", ud));
  EXPECT_EQ(world.ExitInfoOf("brick", ud).exit_code, 0);

  // Running the revived executable starts from the beginning, but the static
  // counter begins at its value when the process was killed (3, after two fed
  // lines): the first iteration increments it and prints r=1 s=4 k=1.
  const int32_t revived = world.StartVm("brick", "/u/user/revived");
  ASSERT_GT(revived, 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", revived));
  EXPECT_NE(world.console("brick")->PlainOutput().find("r=1 s=4 k=1"), std::string::npos);
}

TEST(Undump, RejectsGarbageInputs) {
  World world;
  world.host("brick").vfs().SetupCreateFile("/tmp/junk", "junk", kUserUid, 0644);
  const int32_t a =
      world.StartTool("brick", "undump", {"/tmp/junk", "/tmp/junk", "/tmp/out"});
  ASSERT_TRUE(world.RunUntilExited("brick", a));
  EXPECT_NE(world.ExitInfoOf("brick", a).exit_code, 0);
}

}  // namespace
}  // namespace pmig
