// Failure injection: crashed machines, corrupted dump files, and the evacuation
// application (the paper's introductory "machine about to go down" scenario).

#include <gtest/gtest.h>

#include "src/apps/evacuate.h"
#include "src/apps/night_shift.h"
#include "src/core/dump_format.h"
#include "src/net/migration_daemon.h"
#include "src/net/rsh.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using core::DumpPaths;
using kernel::SyscallApi;
using test::kUserUid;
using test::World;

TEST(HostFailure, DownedHostRunsNothing) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/hog", {"hog", "100000"});
  world.cluster().RunFor(sim::Millis(50));
  kernel::Proc* p = world.host("brick").FindProc(pid);
  ASSERT_NE(p, nullptr);
  const sim::Nanos cpu_before = p->utime;
  world.cluster().SetHostDown("brick", true);
  world.cluster().RunFor(sim::Seconds(2));
  EXPECT_EQ(p->utime, cpu_before);  // frozen
  world.cluster().SetHostDown("brick", false);
  ASSERT_TRUE(world.RunUntilExited("brick", pid, sim::Seconds(30)));  // resumes
}

TEST(HostFailure, NfsToDownedHostFailsFast) {
  World world;
  world.host("schooner").vfs().SetupCreateFile("/tmp/remote.txt", "bytes");
  world.cluster().SetHostDown("schooner", true);
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  auto err = std::make_shared<Errno>(Errno::kOk);
  const int32_t pid = world.host("brick").SpawnNative(
      "nfs",
      [err](SyscallApi& api) {
        *err = api.Open("/n/schooner/tmp/remote.txt", vm::abi::kORdOnly).error();
        return 0;
      },
      opts);
  world.RunUntilExited("brick", pid);
  EXPECT_EQ(*err, Errno::kHostUnreach);
}

TEST(HostFailure, RshAndDaemonToDownedHostUnreachable) {
  test::WorldOptions options;
  options.daemons = true;
  World world(options);
  world.cluster().SetHostDown("schooner", true);
  net::Network* net = &world.cluster().network();
  auto errs = std::make_shared<std::pair<Errno, Errno>>();
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const int32_t pid = world.host("brick").SpawnNative(
      "probe",
      [errs, net](SyscallApi& api) {
        errs->first = net::Rsh(api, *net, "schooner", "ps", {}).error();
        errs->second = net::DaemonExec(api, *net, "schooner", "ps", {}).error();
        return 0;
      },
      opts);
  world.RunUntilExited("brick", pid, sim::Seconds(120));
  EXPECT_EQ(errs->first, Errno::kHostUnreach);
  EXPECT_EQ(errs->second, Errno::kHostUnreach);
}

TEST(HostFailure, DumpStrandedOnCrashedHostCannotRestart) {
  // The dump files live on the dying machine: if it goes down before they are
  // copied, restart elsewhere fails — the motivation for the checkpoint
  // application's "move them to a directory managed by the application".
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  ASSERT_EQ(world.ExitInfoOf("brick", dp).exit_code, 0);

  world.cluster().SetHostDown("brick", true);
  const int32_t rs = world.StartTool("schooner", "restart",
                                     {"-p", std::to_string(pid), "-h", "brick"},
                                     kUserUid, world.console("schooner"));
  ASSERT_TRUE(world.RunUntilExited("schooner", rs, sim::Seconds(120)));
  EXPECT_NE(world.ExitInfoOf("schooner", rs).exit_code, 0);
}

TEST(HostFailure, EvacuateThenCrashPreservesWork) {
  // The paper's opening scenario, end to end: brick is about to go down; evacuate
  // it, crash it, and the work continues on schooner.
  World world;
  const int32_t counter = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", counter));
  world.console("brick")->Type("pre-crash\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", counter));
  const int32_t hog = world.StartVm("brick", "/bin/hog", {"hog", "40000000"});
  ASSERT_GT(hog, 0);
  world.cluster().RunFor(sim::Millis(100));

  auto report = std::make_shared<apps::EvacuationReport>();
  net::Network* net = &world.cluster().network();
  kernel::SpawnOptions opts;  // root; runs on schooner (the safe machine)
  opts.tty = world.console("schooner");
  const int32_t ev = world.host("schooner").SpawnNative(
      "evacuate",
      [report, net](SyscallApi& api) {
        *report = apps::EvacuateHost(api, *net, "brick", "schooner",
                                     /*use_daemon=*/false);
        return 0;
      },
      opts);
  ASSERT_TRUE(world.RunUntilExited("schooner", ev, sim::Seconds(600)));
  EXPECT_EQ(report->moved.size(), 2u);
  EXPECT_TRUE(report->unmovable.empty());
  EXPECT_TRUE(report->failed.empty());

  // Lights out on brick.
  world.cluster().SetHostDown("brick", true);

  // Both processes now live on schooner. NOTE the subtlety: the counter's output
  // file lives on brick's (now dead) disk — writes to it vanish while brick is
  // down; the process itself keeps running. (The checkpoint application exists
  // for exactly this gap.)
  EXPECT_EQ(apps::BatchJobsOn(world.host("brick"), kUserUid).size(), 0u);
  int vm_on_schooner = 0;
  for (kernel::Proc* p : world.host("schooner").ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++vm_on_schooner;
  }
  EXPECT_EQ(vm_on_schooner, 2);

  const int32_t moved = world.FindPidByCommand("schooner", "migrated");
  ASSERT_GT(moved, 0);
}

TEST(HostFailure, EvacuationReportsUnmovableProcesses) {
  World world;
  const int32_t socketer = world.StartVm("brick", "/bin/socketer");
  ASSERT_TRUE(world.RunUntilBlocked("brick", socketer));
  auto report = std::make_shared<apps::EvacuationReport>();
  net::Network* net = &world.cluster().network();
  kernel::SpawnOptions opts;  // root
  const int32_t ev = world.host("brick").SpawnNative(
      "evacuate",
      [report, net](SyscallApi& api) {
        *report = apps::EvacuateHost(api, *net, "brick", "schooner",
                                     /*use_daemon=*/false);
        return 0;
      },
      opts);
  ASSERT_TRUE(world.RunUntilExited("brick", ev, sim::Seconds(300)));
  ASSERT_EQ(report->unmovable.size(), 1u);
  EXPECT_EQ(report->unmovable[0], socketer);
  // It was left untouched, still running on brick.
  kernel::Proc* p = world.host("brick").FindProc(socketer);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->Alive());
}

TEST(DumpCorruption, FlippedBitFailsRestartCleanly) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));

  // Flip a byte in the stack file's magic region.
  const DumpPaths paths = DumpPaths::For(pid);
  kernel::Kernel& k = world.host("brick");
  auto r = k.vfs().Resolve(k.vfs().RootState(), paths.stack, vfs::Follow::kAll, nullptr);
  ASSERT_TRUE(r.ok());
  r->inode->data[0] ^= 0x40;

  const int32_t rs = world.StartTool("brick", "restart", {"-p", std::to_string(pid)},
                                     kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilExited("brick", rs, sim::Seconds(120)));
  EXPECT_NE(world.ExitInfoOf("brick", rs).exit_code, 0);
  EXPECT_NE(world.tty("brick", "ttyp0")->PlainOutput().find(""), std::string::npos);
}

TEST(DumpCorruption, TruncatedAoutFailsRestartCleanly) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));

  const DumpPaths paths = DumpPaths::For(pid);
  kernel::Kernel& k = world.host("brick");
  auto r = k.vfs().Resolve(k.vfs().RootState(), paths.aout, vfs::Follow::kAll, nullptr);
  ASSERT_TRUE(r.ok());
  r->inode->data.resize(10);  // header survives partially; body gone

  const int32_t rs = world.StartTool("brick", "restart", {"-p", std::to_string(pid)},
                                     kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilExited("brick", rs, sim::Seconds(120)));
  EXPECT_NE(world.ExitInfoOf("brick", rs).exit_code, 0);
}

}  // namespace
}  // namespace pmig
