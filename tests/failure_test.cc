// Failure injection: crashed machines, corrupted dump files, and the evacuation
// application (the paper's introductory "machine about to go down" scenario).

#include <gtest/gtest.h>

#include "src/apps/evacuate.h"
#include "src/apps/night_shift.h"
#include "src/core/dump_format.h"
#include "src/core/tools.h"
#include "src/net/migration_daemon.h"
#include "src/net/rsh.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using core::DumpPaths;
using kernel::SyscallApi;
using test::kUserUid;
using test::World;

TEST(HostFailure, DownedHostRunsNothing) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/hog", {"hog", "100000"});
  world.cluster().RunFor(sim::Millis(50));
  kernel::Proc* p = world.host("brick").FindProc(pid);
  ASSERT_NE(p, nullptr);
  const sim::Nanos cpu_before = p->utime;
  world.cluster().SetHostDown("brick", true);
  world.cluster().RunFor(sim::Seconds(2));
  EXPECT_EQ(p->utime, cpu_before);  // frozen
  world.cluster().SetHostDown("brick", false);
  ASSERT_TRUE(world.RunUntilExited("brick", pid, sim::Seconds(30)));  // resumes
}

TEST(HostFailure, NfsToDownedHostFailsFast) {
  World world;
  world.host("schooner").vfs().SetupCreateFile("/tmp/remote.txt", "bytes");
  world.cluster().SetHostDown("schooner", true);
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  auto err = std::make_shared<Errno>(Errno::kOk);
  const int32_t pid = world.host("brick").SpawnNative(
      "nfs",
      [err](SyscallApi& api) {
        *err = api.Open("/n/schooner/tmp/remote.txt", vm::abi::kORdOnly).error();
        return 0;
      },
      opts);
  world.RunUntilExited("brick", pid);
  EXPECT_EQ(*err, Errno::kHostUnreach);
}

TEST(HostFailure, RshAndDaemonToDownedHostUnreachable) {
  test::WorldOptions options;
  options.daemons = true;
  World world(options);
  world.cluster().SetHostDown("schooner", true);
  net::Network* net = &world.cluster().network();
  auto errs = std::make_shared<std::pair<Errno, Errno>>();
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const int32_t pid = world.host("brick").SpawnNative(
      "probe",
      [errs, net](SyscallApi& api) {
        errs->first = net::Rsh(api, *net, "schooner", "ps", {}).error();
        errs->second = net::DaemonExec(api, *net, "schooner", "ps", {}).error();
        return 0;
      },
      opts);
  world.RunUntilExited("brick", pid, sim::Seconds(120));
  EXPECT_EQ(errs->first, Errno::kHostUnreach);
  EXPECT_EQ(errs->second, Errno::kHostUnreach);
}

TEST(HostFailure, DumpStrandedOnCrashedHostCannotRestart) {
  // The dump files live on the dying machine: if it goes down before they are
  // copied, restart elsewhere fails — the motivation for the checkpoint
  // application's "move them to a directory managed by the application".
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  ASSERT_EQ(world.ExitInfoOf("brick", dp).exit_code, 0);

  world.cluster().SetHostDown("brick", true);
  const int32_t rs = world.StartTool("schooner", "restart",
                                     {"-p", std::to_string(pid), "-h", "brick"},
                                     kUserUid, world.console("schooner"));
  ASSERT_TRUE(world.RunUntilExited("schooner", rs, sim::Seconds(120)));
  EXPECT_NE(world.ExitInfoOf("schooner", rs).exit_code, 0);
}

TEST(HostFailure, EvacuateThenCrashPreservesWork) {
  // The paper's opening scenario, end to end: brick is about to go down; evacuate
  // it, crash it, and the work continues on schooner.
  World world;
  const int32_t counter = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", counter));
  world.console("brick")->Type("pre-crash\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", counter));
  const int32_t hog = world.StartVm("brick", "/bin/hog", {"hog", "40000000"});
  ASSERT_GT(hog, 0);
  world.cluster().RunFor(sim::Millis(100));

  auto report = std::make_shared<apps::EvacuationReport>();
  net::Network* net = &world.cluster().network();
  kernel::SpawnOptions opts;  // root; runs on schooner (the safe machine)
  opts.tty = world.console("schooner");
  const int32_t ev = world.host("schooner").SpawnNative(
      "evacuate",
      [report, net](SyscallApi& api) {
        *report = apps::EvacuateHost(api, *net, "brick", "schooner",
                                     /*use_daemon=*/false);
        return 0;
      },
      opts);
  ASSERT_TRUE(world.RunUntilExited("schooner", ev, sim::Seconds(600)));
  EXPECT_EQ(report->moved.size(), 2u);
  EXPECT_TRUE(report->unmovable.empty());
  EXPECT_TRUE(report->failed.empty());

  // Lights out on brick.
  world.cluster().SetHostDown("brick", true);

  // Both processes now live on schooner. NOTE the subtlety: the counter's output
  // file lives on brick's (now dead) disk — writes to it vanish while brick is
  // down; the process itself keeps running. (The checkpoint application exists
  // for exactly this gap.)
  EXPECT_EQ(apps::BatchJobsOn(world.host("brick"), kUserUid).size(), 0u);
  int vm_on_schooner = 0;
  for (kernel::Proc* p : world.host("schooner").ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++vm_on_schooner;
  }
  EXPECT_EQ(vm_on_schooner, 2);

  const int32_t moved = world.FindPidByCommand("schooner", "migrated");
  ASSERT_GT(moved, 0);
}

TEST(HostFailure, EvacuationReportsUnmovableProcesses) {
  World world;
  const int32_t socketer = world.StartVm("brick", "/bin/socketer");
  ASSERT_TRUE(world.RunUntilBlocked("brick", socketer));
  auto report = std::make_shared<apps::EvacuationReport>();
  net::Network* net = &world.cluster().network();
  kernel::SpawnOptions opts;  // root
  const int32_t ev = world.host("brick").SpawnNative(
      "evacuate",
      [report, net](SyscallApi& api) {
        *report = apps::EvacuateHost(api, *net, "brick", "schooner",
                                     /*use_daemon=*/false);
        return 0;
      },
      opts);
  ASSERT_TRUE(world.RunUntilExited("brick", ev, sim::Seconds(300)));
  ASSERT_EQ(report->unmovable.size(), 1u);
  EXPECT_EQ(report->unmovable[0], socketer);
  // It was left untouched, still running on brick.
  kernel::Proc* p = world.host("brick").FindProc(socketer);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->Alive());
}

TEST(DumpCorruption, FlippedBitFailsRestartCleanly) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));

  // Flip a byte in the stack file's magic region.
  const DumpPaths paths = DumpPaths::For(pid);
  kernel::Kernel& k = world.host("brick");
  auto r = k.vfs().Resolve(k.vfs().RootState(), paths.stack, vfs::Follow::kAll, nullptr);
  ASSERT_TRUE(r.ok());
  r->inode->data[0] ^= 0x40;

  const int32_t rs = world.StartTool("brick", "restart", {"-p", std::to_string(pid)},
                                     kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilExited("brick", rs, sim::Seconds(120)));
  EXPECT_NE(world.ExitInfoOf("brick", rs).exit_code, 0);
  EXPECT_NE(world.tty("brick", "ttyp0")->PlainOutput().find(""), std::string::npos);
}

namespace {

// Spawns a native process on `host` that runs migrate with the given options
// and publishes the return code; the caller drives the cluster to completion.
std::pair<int32_t, std::shared_ptr<int>> SpawnMigrate(World& world, const std::string& host,
                                                      int32_t pid, const std::string& from,
                                                      const std::string& to, bool use_daemon,
                                                      const core::MigrateOptions& mopts) {
  auto rc = std::make_shared<int>(-1);
  net::Network* net = &world.cluster().network();
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const int32_t mig = world.host(host).SpawnNative(
      "migrate",
      [rc, net, pid, from, to, use_daemon, mopts](SyscallApi& api) {
        *rc = core::Migrate(api, *net, pid, from, to, use_daemon, mopts);
        return *rc;
      },
      opts);
  return {mig, rc};
}

bool NoDumpFilesLeft(World& world, const std::string& host, int32_t pid) {
  const DumpPaths paths = DumpPaths::For(pid);
  return !world.FileExists(host, paths.aout) && !world.FileExists(host, paths.files) &&
         !world.FileExists(host, paths.stack) && !world.FileExists(host, paths.ready) &&
         !world.FileExists(host, paths.claim);
}

}  // namespace

TEST(MigrateTransaction, TransientNetFaultRetriesAndSucceeds) {
  test::WorldOptions options;
  options.metrics = true;
  options.faults.enabled = true;
  options.faults.net_fail_first = 1;  // the first rsh request is lost on the wire
  World world(options);
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  auto [mig, rc] = SpawnMigrate(world, "brick", pid, "brick", "schooner",
                                /*use_daemon=*/false, core::MigrateOptions::Robust());
  ASSERT_TRUE(world.RunUntilExited("brick", mig, sim::Seconds(300)));
  EXPECT_EQ(*rc, core::kToolOk);
  EXPECT_GT(world.FindPidByCommand("schooner", "migrated"), 0);
  EXPECT_GE(world.host("brick").metrics().Counter("migrate.retries"), 1);
  EXPECT_GE(world.host("brick").metrics().Counter("fault.injected.net_send"), 1);
  EXPECT_TRUE(NoDumpFilesLeft(world, "brick", pid));
}

TEST(MigrateTransaction, TargetDownBetweenDumpAndRestartFallsBackToSource) {
  test::WorldOptions options;
  options.metrics = true;
  World world(options);
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  // The target is dead by the time the restart leg runs; every remote attempt
  // fails, and the transaction restarts the (already dumped) process at home.
  world.cluster().SetHostDown("schooner", true);
  auto [mig, rc] = SpawnMigrate(world, "brick", pid, "brick", "schooner",
                                /*use_daemon=*/false, core::MigrateOptions::Robust());
  ASSERT_TRUE(world.RunUntilExited("brick", mig, sim::Seconds(300)));
  EXPECT_EQ(*rc, core::kMigrateFellBack);
  EXPECT_GT(world.FindPidByCommand("brick", "migrated"), 0);
  EXPECT_EQ(world.host("brick").metrics().Counter("migrate.fallback_restarts"), 1);
  EXPECT_TRUE(NoDumpFilesLeft(world, "brick", pid));
}

TEST(MigrateTransaction, CorruptedFilesFileIsRejectedAndSweptUp) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t dp =
      world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid), "--tx"});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  ASSERT_EQ(world.ExitInfoOf("brick", dp).exit_code, 0);

  // Corrupt the rewritten filesXXXXX magic on disk.
  const DumpPaths paths = DumpPaths::For(pid);
  kernel::Kernel& k = world.host("brick");
  auto r = k.vfs().Resolve(k.vfs().RootState(), paths.files, vfs::Follow::kAll, nullptr);
  ASSERT_TRUE(r.ok());
  r->inode->data[0] ^= 0x40;

  // The dump leg resumes idempotently (readyXXXXX exists); restart rejects the
  // corrupt file everywhere, including the fallback — the dump set is
  // unconsumable, so migrate sweeps it up rather than leaving a trap.
  auto [mig, rc] = SpawnMigrate(world, "brick", pid, "brick", "schooner",
                                /*use_daemon=*/false, core::MigrateOptions::Robust());
  ASSERT_TRUE(world.RunUntilExited("brick", mig, sim::Seconds(300)));
  EXPECT_EQ(*rc, core::kToolFail);
  EXPECT_TRUE(NoDumpFilesLeft(world, "brick", pid));
}

TEST(MigrateTransaction, HalfWrittenDumpNeverSurvivesDumpproc) {
  // A dump whose filesXXXXX cannot be parsed back is swept up by dumpproc
  // itself, not left half-written for a later restart to trip over.
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  // Produce the raw dump with a plain SIGDUMP (no dumpproc yet).
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const int32_t killer = world.host("brick").SpawnNative(
      "killer",
      [pid](SyscallApi& api) { return api.Kill(pid, vm::abi::kSigDump).ok() ? 0 : 1; },
      opts);
  ASSERT_TRUE(world.RunUntilExited("brick", killer));
  const DumpPaths paths = DumpPaths::For(pid);
  ASSERT_TRUE(world.cluster().RunUntil(
      [&] { return world.FileExists("brick", paths.files); }, sim::Seconds(30)));

  // Mangle filesXXXXX before dumpproc gets to it.
  kernel::Kernel& k = world.host("brick");
  auto r = k.vfs().Resolve(k.vfs().RootState(), paths.files, vfs::Follow::kAll, nullptr);
  ASSERT_TRUE(r.ok());
  r->inode->data[0] ^= 0x40;

  const int32_t dp =
      world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid), "--tx"});
  ASSERT_TRUE(world.RunUntilExited("brick", dp, sim::Seconds(60)));
  EXPECT_NE(world.ExitInfoOf("brick", dp).exit_code, 0);
  EXPECT_TRUE(NoDumpFilesLeft(world, "brick", pid));
}

TEST(FaultInjection, DumpCorruptionAbortsDumpAndProcessSurvives) {
  test::WorldOptions options;
  options.metrics = true;
  options.faults.enabled = true;
  options.faults.dump_corruption_rate = 1.0;
  World world(options);
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  ASSERT_TRUE(world.RunUntilExited("brick", dp, sim::Seconds(60)));
  EXPECT_NE(world.ExitInfoOf("brick", dp).exit_code, 0);

  // The kernel noticed the dump would not parse back, unlinked the partial
  // files, and resumed the process — a dump that cannot land intact must never
  // kill its subject.
  kernel::Proc* p = world.host("brick").FindProc(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->Alive());
  EXPECT_GE(world.host("brick").metrics().Counter("migration.dump_aborts"), 1);
  EXPECT_GE(world.host("brick").metrics().Counter("fault.injected.dump_corrupt"), 1);
  EXPECT_TRUE(NoDumpFilesLeft(world, "brick", pid));
}

TEST(FaultInjection, DiskFullWindowAbortsDumpAndSurfacesEnospc) {
  test::WorldOptions options;
  options.metrics = true;
  options.faults.enabled = true;
  options.faults.disk_full.push_back({"brick", 0, sim::Seconds(600)});
  World world(options);
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  // An ordinary write path sees a plain ENOSPC.
  auto err = std::make_shared<Errno>(Errno::kOk);
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const int32_t writer = world.host("brick").SpawnNative(
      "writer",
      [err](SyscallApi& api) {
        *err = api.Creat("/usr/tmp/full.txt").error();
        return 0;
      },
      opts);
  ASSERT_TRUE(world.RunUntilExited("brick", writer));
  EXPECT_EQ(*err, Errno::kNoSpc);

  // The kernel-side dump writer hits the same wall and aborts cleanly.
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  ASSERT_TRUE(world.RunUntilExited("brick", dp, sim::Seconds(60)));
  EXPECT_NE(world.ExitInfoOf("brick", dp).exit_code, 0);
  kernel::Proc* p = world.host("brick").FindProc(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->Alive());
  EXPECT_GE(world.host("brick").metrics().Counter("fault.injected.disk_full"), 1);
  EXPECT_TRUE(NoDumpFilesLeft(world, "brick", pid));
}

TEST(RemoteExecTimeout, WedgedRemoteCommandTimesOutInsteadOfHangingForever) {
  test::WorldOptions options;
  options.daemons = true;
  World world(options);
  world.cluster().RegisterProgram(
      "hang", [](SyscallApi& api, const std::vector<std::string>&) {
        api.Sleep(sim::Seconds(3600));
        return 0;
      });
  net::Network* net = &world.cluster().network();
  auto errs = std::make_shared<std::pair<Errno, Errno>>();
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const int32_t probe = world.host("brick").SpawnNative(
      "probe",
      [errs, net](SyscallApi& api) {
        net::RemoteExecOptions short_wait;
        short_wait.timeout = sim::Seconds(5);
        errs->first = net::Rsh(api, *net, "schooner", "hang", {}, short_wait).error();
        errs->second = net::DaemonExec(api, *net, "schooner", "hang", {}, short_wait).error();
        return 0;
      },
      opts);
  ASSERT_TRUE(world.RunUntilExited("brick", probe, sim::Seconds(120)));
  EXPECT_EQ(errs->first, Errno::kTimedOut);
  EXPECT_EQ(errs->second, Errno::kTimedOut);
}

TEST(RemoteExecTimeout, HostPoweringOffAfterRequestQueuedUnblocksCaller) {
  // The satellite bug: the remote host accepts the request, then powers off.
  // The caller used to block until the simulation's run limit; now the wait
  // ends with EHOSTUNREACH as soon as the host is seen down.
  test::WorldOptions options;
  options.daemons = true;
  World world(options);
  world.cluster().RegisterProgram(
      "hang", [](SyscallApi& api, const std::vector<std::string>&) {
        api.Sleep(sim::Seconds(3600));
        return 0;
      });
  net::Network* net = &world.cluster().network();
  auto err = std::make_shared<Errno>(Errno::kOk);
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const int32_t probe = world.host("brick").SpawnNative(
      "probe",
      [err, net](SyscallApi& api) {
        *err = net::DaemonExec(api, *net, "schooner", "hang", {}).error();
        return 0;
      },
      opts);
  world.cluster().RunFor(sim::Seconds(2));  // request accepted, hang running
  world.cluster().SetHostDown("schooner", true);
  ASSERT_TRUE(world.RunUntilExited("brick", probe, sim::Seconds(120)));
  EXPECT_EQ(*err, Errno::kHostUnreach);
}

TEST(MigrateErrors, ComplaintNamesTheUnderlyingErrno) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.cluster().SetHostDown("schooner", true);
  const int32_t mig = world.StartTool(
      "brick", "migrate", {"-p", std::to_string(pid), "-t", "schooner"});
  ASSERT_TRUE(world.RunUntilExited("brick", mig, sim::Seconds(300)));
  EXPECT_NE(world.ExitInfoOf("brick", mig).exit_code, 0);
  EXPECT_NE(world.tty("brick", "ttyp0")->PlainOutput().find("EHOSTUNREACH"),
            std::string::npos);
}

TEST(DumpCorruption, TruncatedAoutFailsRestartCleanly) {
  World world;
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));

  const DumpPaths paths = DumpPaths::For(pid);
  kernel::Kernel& k = world.host("brick");
  auto r = k.vfs().Resolve(k.vfs().RootState(), paths.aout, vfs::Follow::kAll, nullptr);
  ASSERT_TRUE(r.ok());
  r->inode->data.resize(10);  // header survives partially; body gone

  const int32_t rs = world.StartTool("brick", "restart", {"-p", std::to_string(pid)},
                                     kUserUid, world.console("brick"));
  ASSERT_TRUE(world.RunUntilExited("brick", rs, sim::Seconds(120)));
  EXPECT_NE(world.ExitInfoOf("brick", rs).exit_code, 0);
}

}  // namespace
}  // namespace pmig
