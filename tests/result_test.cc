// Unit tests for Result/Status and the PMIG_TRY plumbing.

#include "src/sim/result.h"

#include <gtest/gtest.h>

#include <string>

namespace pmig {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.error(), Errno::kOk);
}

TEST(Result, HoldsError) {
  Result<int> r = Errno::kNoEnt;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kNoEnt);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrReturnsValueOnSuccess) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(Result, MoveOutValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  std::unique_ptr<int> p = std::move(r).value();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 7);
}

TEST(Result, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.error(), Errno::kOk);
}

TEST(Status, CarriesError) {
  Status st = Errno::kAcces;
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.error(), Errno::kAcces);
}

namespace try_helpers {

Result<int> Fails() { return Errno::kBadF; }
Result<int> Succeeds() { return 5; }

Result<int> UseTrySuccess() {
  PMIG_TRY(int v, Succeeds());
  return v + 1;
}

Result<int> UseTryFailure() {
  PMIG_TRY(int v, Fails());
  return v + 1;  // unreachable
}

Status UseReturnIfError() {
  PMIG_RETURN_IF_ERROR(Status(Errno::kIo));
  return Status::Ok();
}

}  // namespace try_helpers

TEST(Try, PropagatesSuccess) {
  const Result<int> r = try_helpers::UseTrySuccess();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 6);
}

TEST(Try, PropagatesError) {
  const Result<int> r = try_helpers::UseTryFailure();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kBadF);
}

TEST(Try, ReturnIfErrorPropagates) {
  EXPECT_EQ(try_helpers::UseReturnIfError().error(), Errno::kIo);
}

TEST(ErrnoName, KnownValues) {
  EXPECT_EQ(ErrnoName(Errno::kNoEnt), "ENOENT");
  EXPECT_EQ(ErrnoName(Errno::kAcces), "EACCES");
  EXPECT_EQ(ErrnoName(Errno::kLoop), "ELOOP");
  EXPECT_EQ(ErrnoName(Errno::kOk), "OK");
}

}  // namespace
}  // namespace pmig
