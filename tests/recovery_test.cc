// Partition-tolerant recovery: placement leases and the orphan dump-set reaper.
//
// The lease tests pin the protocol itself — acquire, contend, renew, break on
// expiry, fail cleanly across a partition. The reaper tests pin each decision
// of its state machine (origin-alive, young, incomplete aging, consumed,
// holder-unreachable, break-contended, revive) and above all the exactly-once
// rule: a healed partition yields exactly one copy of the process, never a
// fallback restart *and* a reaper resurrection.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/apps/recovery.h"
#include "src/core/dump_format.h"
#include "src/core/test_programs.h"
#include "src/core/tools.h"
#include "tests/test_util.h"
#include "src/vm/abi.h"

namespace pmig {
namespace {

using kernel::SyscallApi;
using test::World;
using vm::abi::OpenFlags;

// Same daemon-style victim as the chaos soak: sleeps in a loop forever, so it
// stays alive wherever a restart lands it.
constexpr std::string_view kTickerSource = R"(
        .text
start:
loop:   movi r0, 2
        sys  SYS_sleep
        jmp  loop
)";

// Runs `fn` as a root native process on `host` and waits for it to exit.
int RunNative(World& world, const std::string& host,
              std::function<int(SyscallApi&)> fn) {
  auto rc = std::make_shared<int>(-999);
  const int32_t pid = world.host(host).SpawnNative(
      "test-native", [rc, fn](SyscallApi& api) { return *rc = fn(api); },
      kernel::SpawnOptions{});
  EXPECT_TRUE(world.RunUntilExited(host, pid, sim::Seconds(600)));
  return *rc;
}

// Starts a ticker on `host`, quiesces it, and dumps it with `dumpproc --tx`,
// leaving a complete (ready-marked) dump set and a dead origin process.
int32_t MakeOrphanedDumpSet(World& world, const std::string& host) {
  core::InstallProgram(world.host(host), "/bin/ticker", kTickerSource);
  const int32_t pid = world.StartVm(host, "/bin/ticker");
  EXPECT_GT(pid, 0);
  EXPECT_TRUE(world.cluster().RunUntil(
      [&world, &host, pid] {
        const kernel::Proc* p = world.host(host).FindProc(pid);
        return p != nullptr && p->state == kernel::ProcState::kSleeping;
      },
      sim::Seconds(120)));
  const int32_t dp =
      world.StartTool(host, "dumpproc", {"-p", std::to_string(pid), "--tx"});
  EXPECT_TRUE(world.RunUntilExited(host, dp, sim::Seconds(120)));
  EXPECT_EQ(world.ExitInfoOf(host, dp).exit_code, core::kToolOk);
  const core::DumpPaths paths = core::DumpPaths::For(pid);
  EXPECT_TRUE(world.FileExists(host, paths.ready));
  return pid;
}

// The one live VM process anywhere whose pre-migration identity is
// (dump_host, pid); nullptr when none (or more than one — that is a bug).
kernel::Proc* FindSurvivor(World& world, const std::string& dump_host,
                           int32_t pid) {
  kernel::Proc* found = nullptr;
  int copies = 0;
  for (const auto& host : world.cluster().hosts()) {
    for (kernel::Proc* p : host->ListProcs()) {
      if (p->kind != kernel::ProcKind::kVm || !p->Alive()) continue;
      if (p->old_pid == pid && p->old_host == dump_host) {
        found = p;
        ++copies;
      }
    }
  }
  EXPECT_LE(copies, 1) << "process " << pid << "@" << dump_host
                       << " restarted more than once";
  return copies == 1 ? found : nullptr;
}

bool DumpSetGone(World& world, const std::string& host, int32_t pid) {
  const core::DumpPaths paths = core::DumpPaths::For(pid);
  for (const std::string* p : {&paths.aout, &paths.files, &paths.stack,
                               &paths.ready, &paths.claim}) {
    if (world.FileExists(host, *p)) return false;
  }
  return true;
}

TEST(PlacementLeaseTest, AcquireContendRenewRelease) {
  test::WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  World world(options);
  net::Network* net = &world.cluster().network();

  auto brick_lease = std::make_shared<apps::PlacementLease>();
  RunNative(world, "brick", [net, brick_lease](SyscallApi& api) {
    const Result<apps::PlacementLease> r =
        apps::AcquirePlacementLease(api, *net, "schooner");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r->held);
    EXPECT_EQ(r->holder, "brick");
    *brick_lease = *r;
    return 0;
  });
  EXPECT_TRUE(world.FileExists("schooner", "/var/lease/placement"));

  // A second coordinator finds the lease held and learns who holds it.
  RunNative(world, "brador", [net](SyscallApi& api) {
    const Result<apps::PlacementLease> r =
        apps::AcquirePlacementLease(api, *net, "schooner");
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r->held);
    EXPECT_EQ(r->holder, "brick");
    return 0;
  });

  // The holder renews, then releases; the target frees up.
  RunNative(world, "brick", [brick_lease](SyscallApi& api) {
    EXPECT_TRUE(apps::RenewPlacementLease(api, brick_lease.get()).ok());
    apps::ReleasePlacementLease(api, *brick_lease);
    return 0;
  });
  EXPECT_FALSE(world.FileExists("schooner", "/var/lease/placement"));

  const sim::MetricsRegistry metrics = world.cluster().AggregateMetrics();
  EXPECT_EQ(metrics.Counter("lease.acquired"), 1);
  EXPECT_EQ(metrics.Counter("lease.contended"), 1);
  EXPECT_EQ(metrics.Counter("lease.renewed"), 1);
  EXPECT_EQ(metrics.Counter("lease.released"), 1);
}

TEST(PlacementLeaseTest, ExpiredLeaseIsBrokenAndOldHolderLearns) {
  test::WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  World world(options);
  net::Network* net = &world.cluster().network();

  auto stale = std::make_shared<apps::PlacementLease>();
  RunNative(world, "brick", [net, stale](SyscallApi& api) {
    apps::LeaseOptions lopts;
    lopts.ttl = sim::Seconds(5);
    const Result<apps::PlacementLease> r =
        apps::AcquirePlacementLease(api, *net, "schooner", lopts);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r->held);
    *stale = *r;
    return 0;
  });
  world.cluster().RunFor(sim::Seconds(10));  // let the lease expire

  // A newcomer breaks the expired lease and takes it.
  RunNative(world, "brador", [net](SyscallApi& api) {
    const Result<apps::PlacementLease> r =
        apps::AcquirePlacementLease(api, *net, "schooner");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r->held);
    EXPECT_EQ(r->holder, "brador");
    return 0;
  });

  // The original holder's renew fails and marks the lease lost.
  RunNative(world, "brick", [stale](SyscallApi& api) {
    const Status st = apps::RenewPlacementLease(api, stale.get());
    EXPECT_FALSE(st.ok());
    EXPECT_FALSE(stale->held);
    // ... so its release must not unlink the new holder's lease.
    apps::ReleasePlacementLease(api, *stale);
    return 0;
  });
  EXPECT_TRUE(world.FileExists("schooner", "/var/lease/placement"));

  const sim::MetricsRegistry metrics = world.cluster().AggregateMetrics();
  EXPECT_EQ(metrics.Counter("lease.broken"), 1);
  EXPECT_EQ(metrics.Counter("lease.acquired"), 2);
}

// wait > 0 turns contention into deterministic doubling backoff: sleeps of
// first_backoff, 2x, 4x, ... capped at max_backoff, stopping before the total
// would exceed `wait`. With first=100ms, cap=400ms, wait=2s the schedule is
// exactly 100+200+400+400+400+400 = 1900ms of sleep (a 7th 400ms retry would
// reach 2300ms), every nanosecond of it booked in lease.wait_ns.
TEST(PlacementLeaseTest, ContentionBacksOffDeterministicallyUpToWaitBudget) {
  test::WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  World world(options);
  net::Network* net = &world.cluster().network();

  RunNative(world, "brick", [net](SyscallApi& api) {
    const Result<apps::PlacementLease> r =
        apps::AcquirePlacementLease(api, *net, "schooner");
    EXPECT_TRUE(r.ok() && r->held);
    return 0;
  });

  RunNative(world, "brador", [net](SyscallApi& api) {
    apps::LeaseOptions lopts;
    lopts.wait = sim::Seconds(2);
    lopts.first_backoff = sim::Millis(100);
    lopts.max_backoff = sim::Millis(400);
    const sim::Nanos t0 = api.Now();
    const Result<apps::PlacementLease> r =
        apps::AcquirePlacementLease(api, *net, "schooner", lopts);
    const sim::Nanos elapsed = api.Now() - t0;
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r->held);
    EXPECT_EQ(r->holder, "brick");
    // The sleeps total exactly 1900ms; the attempts themselves cost RPC time
    // on top, so bound loosely above. The exact slept time is pinned by the
    // lease.wait_ns assertion below.
    EXPECT_GE(elapsed, sim::Millis(1900));
    EXPECT_LT(elapsed, sim::Seconds(4));
    return 0;
  });

  const sim::MetricsRegistry metrics = world.cluster().AggregateMetrics();
  EXPECT_EQ(metrics.Counter("lease.wait_ns"), sim::Millis(1900));
  EXPECT_EQ(metrics.Counter("lease.contended"), 7);  // initial try + 6 retries
  EXPECT_EQ(metrics.Counter("lease.acquired"), 1);
}

// A release during the backoff window hands the lease to the waiter instead of
// running out its budget.
TEST(PlacementLeaseTest, BackoffWinsWhenHolderReleasesMidWait) {
  test::WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  World world(options);
  net::Network* net = &world.cluster().network();

  // Holder takes the lease, sits on it for 350ms, then releases — concurrent
  // with the contender below.
  const int32_t holder = world.host("brick").SpawnNative(
      "holder",
      [net](SyscallApi& api) {
        const Result<apps::PlacementLease> r =
            apps::AcquirePlacementLease(api, *net, "schooner");
        EXPECT_TRUE(r.ok() && r->held);
        api.Sleep(sim::Millis(350));
        apps::ReleasePlacementLease(api, *r);
        return 0;
      },
      kernel::SpawnOptions{});
  world.cluster().RunFor(sim::Millis(50));  // let the holder win the race

  RunNative(world, "brador", [net](SyscallApi& api) {
    apps::LeaseOptions lopts;
    lopts.wait = sim::Seconds(2);
    const Result<apps::PlacementLease> r =
        apps::AcquirePlacementLease(api, *net, "schooner", lopts);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r->held);  // retries at +100/+300/+700ms; the holder let go
    EXPECT_EQ(r->holder, "brador");
    return 0;
  });
  EXPECT_TRUE(world.RunUntilExited("brick", holder, sim::Seconds(10)));

  const sim::MetricsRegistry metrics = world.cluster().AggregateMetrics();
  EXPECT_EQ(metrics.Counter("lease.acquired"), 2);
  EXPECT_GT(metrics.Counter("lease.wait_ns"), 0);
}

TEST(PlacementLeaseTest, PartitionedTargetFailsCleanlyAndHealedSucceeds) {
  test::WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  options.faults.enabled = true;
  sim::PartitionFault cut;
  cut.group_a = {"brick"};
  cut.group_b = {"schooner"};
  cut.begin = 0;
  cut.heal = sim::Seconds(60);
  options.faults.partitions.push_back(cut);
  World world(options);
  net::Network* net = &world.cluster().network();

  // Cut off from the target: the acquisition fails with an Errno (the
  // coordinator abandons cleanly), never a wedge, never a half-made lease.
  RunNative(world, "brick", [net](SyscallApi& api) {
    const Result<apps::PlacementLease> r =
        apps::AcquirePlacementLease(api, *net, "schooner");
    EXPECT_FALSE(r.ok());
    return 0;
  });
  EXPECT_FALSE(world.FileExists("schooner", "/var/lease/placement"));
  EXPECT_GT(world.cluster().AggregateMetrics().Counter("fault.injected.partition"), 0);

  // After the heal the same call just works.
  world.cluster().RunFor(sim::Seconds(61));
  RunNative(world, "brick", [net](SyscallApi& api) {
    const Result<apps::PlacementLease> r =
        apps::AcquirePlacementLease(api, *net, "schooner");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r->held);
    return 0;
  });
  EXPECT_TRUE(world.FileExists("schooner", "/var/lease/placement"));
}

TEST(ReaperTest, RevivesOrphanedReadySet) {
  test::WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  options.daemons = true;
  World world(options);
  net::Network* net = &world.cluster().network();

  const int32_t pid = MakeOrphanedDumpSet(world, "schooner");
  world.cluster().RunFor(sim::Seconds(70));  // past the default 60 s grace

  auto report = std::make_shared<apps::ReaperReport>();
  RunNative(world, "brick", [net, report](SyscallApi& api) {
    *report = apps::ReapOrphans(api, *net);
    return 0;
  });
  ASSERT_EQ(report->revived.size(), 1u);
  EXPECT_EQ(report->revived[0], pid);
  EXPECT_NE(report->log.find("revived"), std::string::npos) << report->log;

  world.cluster().RunFor(sim::Seconds(5));
  kernel::Proc* survivor = FindSurvivor(world, "schooner", pid);
  ASSERT_NE(survivor, nullptr) << "revived process not running anywhere";
  EXPECT_TRUE(DumpSetGone(world, "schooner", pid));
  // The revive leased its restart target and cleaned up after itself.
  for (const std::string host : {"brick", "schooner", "brador"}) {
    EXPECT_FALSE(world.FileExists(host, "/var/lease/placement")) << host;
  }
  const sim::MetricsRegistry metrics = world.cluster().AggregateMetrics();
  EXPECT_EQ(metrics.Counter("reaper.revived"), 1);
}

TEST(ReaperTest, LeavesLiveOriginsAndYoungSetsAlone) {
  test::WorldOptions options;
  options.num_hosts = 2;
  options.metrics = true;
  World world(options);
  net::Network* net = &world.cluster().network();

  // A fresh complete set: dead origin, but the marker is younger than grace —
  // its coordinator may still be mid-transaction.
  const int32_t pid = MakeOrphanedDumpSet(world, "schooner");

  // A dump-set file for a pid that is alive: a dump landing right now.
  core::InstallProgram(world.host("brick"), "/bin/ticker", kTickerSource);
  const int32_t live = world.StartVm("brick", "/bin/ticker");
  ASSERT_GT(live, 0);
  world.cluster().RunFor(sim::Millis(100));
  RunNative(world, "brick", [live](SyscallApi& api) {
    const Result<int> fd =
        api.Open(core::DumpPaths::For(live).aout,
                 OpenFlags::kOWrOnly | OpenFlags::kOCreat, 0644);
    EXPECT_TRUE(fd.ok());
    return api.Close(*fd).ok() ? 0 : 1;
  });

  auto report = std::make_shared<apps::ReaperReport>();
  RunNative(world, "brick", [net, report](SyscallApi& api) {
    *report = apps::ReapOrphans(api, *net);
    return 0;
  });
  EXPECT_EQ(report->scanned, 2);
  EXPECT_TRUE(report->revived.empty());
  EXPECT_TRUE(report->collected.empty());
  EXPECT_NE(report->log.find(std::to_string(live) + "@brick:origin-alive"),
            std::string::npos)
      << report->log;
  EXPECT_NE(report->log.find(std::to_string(pid) + "@schooner:young"),
            std::string::npos)
      << report->log;
  EXPECT_FALSE(DumpSetGone(world, "schooner", pid));
}

TEST(ReaperTest, IncompleteSetsAgeAcrossPassesBeforeCollection) {
  test::WorldOptions options;
  options.num_hosts = 2;
  options.metrics = true;
  World world(options);
  net::Network* net = &world.cluster().network();

  // Half-written debris: an a.out with no ready marker, for a pid nobody has.
  const int32_t pid = 777;
  RunNative(world, "schooner", [pid](SyscallApi& api) {
    const Result<int> fd =
        api.Open(core::DumpPaths::For(pid).aout,
                 OpenFlags::kOWrOnly | OpenFlags::kOCreat, 0644);
    EXPECT_TRUE(fd.ok());
    return api.Close(*fd).ok() ? 0 : 1;
  });

  apps::ReaperOptions ropts;
  ropts.grace = sim::Seconds(10);
  ropts.use_daemon = false;
  auto state = std::make_shared<apps::ReaperState>();
  auto report = std::make_shared<apps::ReaperReport>();
  auto pass = [&world, net, ropts, state, report](bool with_state) {
    RunNative(world, "brick", [net, ropts, state, report, with_state](SyscallApi& api) {
      *report = apps::ReapOrphans(api, *net, ropts,
                                  with_state ? state.get() : nullptr);
      return 0;
    });
  };

  // One-shot (stateless) passes must never touch an incomplete set.
  pass(/*with_state=*/false);
  EXPECT_NE(report->log.find("incomplete;"), std::string::npos) << report->log;
  EXPECT_TRUE(world.FileExists("schooner", core::DumpPaths::For(pid).aout));

  // Stateful passes age it: first-seen, still young, then debris.
  pass(/*with_state=*/true);
  EXPECT_NE(report->log.find("incomplete-first-seen"), std::string::npos);
  world.cluster().RunFor(sim::Seconds(4));
  pass(/*with_state=*/true);
  EXPECT_NE(report->log.find("incomplete-young"), std::string::npos);
  EXPECT_TRUE(world.FileExists("schooner", core::DumpPaths::For(pid).aout));
  world.cluster().RunFor(sim::Seconds(10));
  pass(/*with_state=*/true);
  EXPECT_NE(report->log.find("debris"), std::string::npos) << report->log;
  EXPECT_FALSE(world.FileExists("schooner", core::DumpPaths::For(pid).aout));
  EXPECT_EQ(world.cluster().AggregateMetrics().Counter("reaper.collected"), 1);
}

TEST(ReaperTest, CollectsSetWhoseSurvivorRunsElsewhere) {
  test::WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  World world(options);
  net::Network* net = &world.cluster().network();

  const int32_t pid = MakeOrphanedDumpSet(world, "schooner");

  // Fake the consumed state: a live process on brador carrying the dump's
  // pre-migration identity (as a committed restart would have left it).
  core::InstallProgram(world.host("brador"), "/bin/ticker", kTickerSource);
  const int32_t survivor = world.StartVm("brador", "/bin/ticker");
  ASSERT_GT(survivor, 0);
  world.cluster().RunFor(sim::Millis(100));
  kernel::Proc* sp = world.host("brador").FindProc(survivor);
  ASSERT_NE(sp, nullptr);
  sp->old_pid = pid;
  sp->old_host = "schooner";

  world.cluster().RunFor(sim::Seconds(70));
  auto report = std::make_shared<apps::ReaperReport>();
  RunNative(world, "brick", [net, report](SyscallApi& api) {
    *report = apps::ReapOrphans(api, *net);
    return 0;
  });
  ASSERT_EQ(report->collected.size(), 1u);
  EXPECT_EQ(report->collected[0], pid);
  EXPECT_NE(report->log.find("consumed"), std::string::npos) << report->log;
  EXPECT_TRUE(DumpSetGone(world, "schooner", pid));
  // The survivor itself is untouched.
  kernel::Proc* still = world.host("brador").FindProc(survivor);
  ASSERT_NE(still, nullptr);
  EXPECT_TRUE(still->Alive());
  EXPECT_EQ(world.cluster().AggregateMetrics().Counter("reaper.collected"), 1);
}

// THE exactly-once test: a claimed dump set whose claim holder sits on the far
// side of a partition is untouchable — the holder may be running the process
// over there. Only after the heal, with the holder observable and no survivor
// in sight, does the reaper break the stale claim and revive — exactly once.
TEST(ReaperTest, ClaimedSetWaitsForPartitionHealThenRevivesOnce) {
  test::WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  options.faults.enabled = true;
  sim::PartitionFault island;
  island.group_a = {"brador"};  // the claim holder, cut off from everyone
  island.begin = 0;
  island.heal = sim::Seconds(100);
  options.faults.partitions.push_back(island);
  World world(options);
  net::Network* net = &world.cluster().network();

  const int32_t pid = MakeOrphanedDumpSet(world, "schooner");
  // Stamp a claim naming the partitioned host, as if brador claimed the set
  // and then vanished behind the cut mid-restart.
  RunNative(world, "schooner", [pid](SyscallApi& api) {
    const Result<int> fd =
        api.Open(core::DumpPaths::For(pid).claim,
                 OpenFlags::kOWrOnly | OpenFlags::kOCreat, 0644);
    EXPECT_TRUE(fd.ok());
    const Result<int64_t> n =
        api.Write(*fd, core::FormatClaimMarker("brador", api.Now()));
    EXPECT_TRUE(n.ok());
    return api.Close(*fd).ok() ? 0 : 1;
  });

  apps::ReaperOptions ropts;
  ropts.grace = sim::Seconds(30);
  ropts.use_daemon = false;

  // Pass 1, mid-partition: everything is stale, but the holder is unreachable.
  world.cluster().RunFor(sim::Seconds(70));
  auto report = std::make_shared<apps::ReaperReport>();
  RunNative(world, "brick", [net, ropts, report](SyscallApi& api) {
    *report = apps::ReapOrphans(api, *net, ropts);
    return 0;
  });
  EXPECT_TRUE(report->revived.empty());
  EXPECT_TRUE(report->collected.empty());
  EXPECT_NE(report->log.find("holder-unreachable"), std::string::npos)
      << report->log;
  EXPECT_FALSE(DumpSetGone(world, "schooner", pid));
  EXPECT_EQ(world.cluster().AggregateMetrics().Counter("reaper.claims_broken"), 0);

  // Pass 2, healed: the holder is observable, no survivor exists — the
  // claimant died before committing. Break the claim and revive.
  world.cluster().RunFor(sim::Seconds(40));
  RunNative(world, "brick", [net, ropts, report](SyscallApi& api) {
    *report = apps::ReapOrphans(api, *net, ropts);
    return 0;
  });
  ASSERT_EQ(report->revived.size(), 1u);
  EXPECT_EQ(report->revived[0], pid);

  world.cluster().RunFor(sim::Seconds(5));
  EXPECT_NE(FindSurvivor(world, "schooner", pid), nullptr);
  EXPECT_TRUE(DumpSetGone(world, "schooner", pid));
  const sim::MetricsRegistry metrics = world.cluster().AggregateMetrics();
  EXPECT_EQ(metrics.Counter("reaper.claims_broken"), 1);
  EXPECT_EQ(metrics.Counter("reaper.revived"), 1);
}

TEST(ReaperTest, ClaimBreakingDefersToAnotherCoordinatorsLease) {
  test::WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  World world(options);
  net::Network* net = &world.cluster().network();

  const int32_t pid = MakeOrphanedDumpSet(world, "schooner");
  // A stale claim by a reachable host (it died between claiming and committing).
  RunNative(world, "schooner", [pid](SyscallApi& api) {
    const Result<int> fd =
        api.Open(core::DumpPaths::For(pid).claim,
                 OpenFlags::kOWrOnly | OpenFlags::kOCreat, 0644);
    EXPECT_TRUE(fd.ok());
    const Result<int64_t> n =
        api.Write(*fd, core::FormatClaimMarker("brick", api.Now()));
    EXPECT_TRUE(n.ok());
    return api.Close(*fd).ok() ? 0 : 1;
  });
  // Another coordinator holds the dump host's lease across the grace window.
  RunNative(world, "brador", [net](SyscallApi& api) {
    apps::LeaseOptions lopts;
    lopts.ttl = sim::Seconds(300);
    const Result<apps::PlacementLease> r =
        apps::AcquirePlacementLease(api, *net, "schooner", lopts);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r->held);
    return 0;
  });

  apps::ReaperOptions ropts;
  ropts.grace = sim::Seconds(30);
  ropts.use_daemon = false;
  world.cluster().RunFor(sim::Seconds(70));
  auto report = std::make_shared<apps::ReaperReport>();
  RunNative(world, "brick", [net, ropts, report](SyscallApi& api) {
    *report = apps::ReapOrphans(api, *net, ropts);
    return 0;
  });
  EXPECT_TRUE(report->revived.empty());
  EXPECT_NE(report->log.find("break-contended"), std::string::npos)
      << report->log;
  EXPECT_FALSE(DumpSetGone(world, "schooner", pid));
  EXPECT_EQ(world.cluster().AggregateMetrics().Counter("reaper.claims_broken"), 0);
}

TEST(ReaperTest, HostSubsetScansOnlyItsShard) {
  test::WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  options.daemons = true;
  World world(options);
  net::Network* net = &world.cluster().network();

  const int32_t pid = MakeOrphanedDumpSet(world, "schooner");
  world.cluster().RunFor(sim::Seconds(70));  // past the default 60 s grace

  // A sharded reaper daemon scoped to brador never looks at schooner's
  // /usr/tmp: the orphan survives its pass untouched.
  auto report = std::make_shared<apps::ReaperReport>();
  RunNative(world, "brick", [net, report](SyscallApi& api) {
    apps::ReaperOptions ropts;
    ropts.hosts = {"brador"};
    *report = apps::ReapOrphans(api, *net, ropts);
    return 0;
  });
  EXPECT_EQ(report->scanned, 0);
  EXPECT_TRUE(report->revived.empty());
  EXPECT_FALSE(DumpSetGone(world, "schooner", pid));

  // The shard that owns schooner settles it — same ladder, same outcome as
  // the classic whole-cluster pass.
  RunNative(world, "brick", [net, report](SyscallApi& api) {
    apps::ReaperOptions ropts;
    ropts.hosts = {"schooner"};
    *report = apps::ReapOrphans(api, *net, ropts);
    return 0;
  });
  ASSERT_EQ(report->revived.size(), 1u);
  EXPECT_EQ(report->revived[0], pid);
  world.cluster().RunFor(sim::Seconds(5));
  EXPECT_NE(FindSurvivor(world, "schooner", pid), nullptr);
  EXPECT_TRUE(DumpSetGone(world, "schooner", pid));
}

TEST(PreapCommandTest, OnePassFromTheShellRevivesAndReports) {
  test::WorldOptions options;
  options.num_hosts = 2;
  options.metrics = true;
  World world(options);

  const int32_t pid = MakeOrphanedDumpSet(world, "schooner");
  world.cluster().RunFor(sim::Seconds(70));

  const int32_t rp =
      world.StartTool("brick", "preap", {"-g", "60", "--rsh"}, /*uid=*/0);
  ASSERT_GT(rp, 0);
  EXPECT_TRUE(world.RunUntilExited("brick", rp, sim::Seconds(120)));
  EXPECT_EQ(world.ExitInfoOf("brick", rp).exit_code, core::kToolOk);

  world.cluster().RunFor(sim::Seconds(5));
  EXPECT_NE(FindSurvivor(world, "schooner", pid), nullptr);
  EXPECT_TRUE(DumpSetGone(world, "schooner", pid));

  // Bad flags are a usage error, not a pass.
  const int32_t bad = world.StartTool("brick", "preap", {"--bogus"}, /*uid=*/0);
  EXPECT_TRUE(world.RunUntilExited("brick", bad, sim::Seconds(120)));
  EXPECT_EQ(world.ExitInfoOf("brick", bad).exit_code, core::kToolUsage);
}

}  // namespace
}  // namespace pmig
