// Lexical path utilities — including the exact Section 5.1 combination rule the
// modified kernel applies to the user-structure cwd string.

#include "src/vfs/path.h"

#include <gtest/gtest.h>

namespace pmig::vfs {
namespace {

TEST(SplitPath, Basic) {
  EXPECT_EQ(SplitPath("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitPath("a/b"), (std::vector<std::string>{"a", "b"}));
}

TEST(SplitPath, CollapsesSlashes) {
  EXPECT_EQ(SplitPath("//a///b/"), (std::vector<std::string>{"a", "b"}));
}

TEST(SplitPath, EmptyAndRoot) {
  EXPECT_TRUE(SplitPath("").empty());
  EXPECT_TRUE(SplitPath("/").empty());
  EXPECT_TRUE(SplitPath("///").empty());
}

TEST(SplitPath, KeepsDotComponents) {
  EXPECT_EQ(SplitPath("./a/.."), (std::vector<std::string>{".", "a", ".."}));
}

TEST(JoinAbsolute, Basic) {
  EXPECT_EQ(JoinAbsolute({}), "/");
  EXPECT_EQ(JoinAbsolute({"a"}), "/a");
  EXPECT_EQ(JoinAbsolute({"a", "b"}), "/a/b");
}

TEST(IsAbsolute, Basic) {
  EXPECT_TRUE(IsAbsolute("/"));
  EXPECT_TRUE(IsAbsolute("/a"));
  EXPECT_FALSE(IsAbsolute("a"));
  EXPECT_FALSE(IsAbsolute(""));
}

struct NormCase {
  const char* input;
  const char* expected;
};

class NormalizeTest : public ::testing::TestWithParam<NormCase> {};

TEST_P(NormalizeTest, Normalizes) {
  EXPECT_EQ(NormalizeAbsolute(GetParam().input), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, NormalizeTest,
    ::testing::Values(NormCase{"/", "/"}, NormCase{"/a/b", "/a/b"},
                      NormCase{"/a//b/", "/a/b"}, NormCase{"/a/./b", "/a/b"},
                      NormCase{"/a/../b", "/b"}, NormCase{"/..", "/"},
                      NormCase{"/../../a", "/a"}, NormCase{"/a/b/../../c", "/c"},
                      NormCase{"/a/b/..", "/a"}, NormCase{"/a/.", "/a"},
                      NormCase{"/./.", "/"}));

struct CombineCase {
  const char* cwd;
  const char* path;
  const char* expected;
};

class CombineTest : public ::testing::TestWithParam<CombineCase> {};

TEST_P(CombineTest, Combines) {
  EXPECT_EQ(Combine(GetParam().cwd, GetParam().path), GetParam().expected);
}

// The Section 5.1 rule: absolute arguments replace the cwd; relative arguments are
// appended and "." / ".." are resolved textually (symlinks are NOT consulted).
INSTANTIATE_TEST_SUITE_P(
    Cases, CombineTest,
    ::testing::Values(CombineCase{"/u/user", "/etc", "/etc"},
                      CombineCase{"/u/user", "src", "/u/user/src"},
                      CombineCase{"/u/user", "..", "/u"},
                      CombineCase{"/u/user", ".", "/u/user"},
                      CombineCase{"/u/user", "../other/./x", "/u/other/x"},
                      CombineCase{"/", "a", "/a"}, CombineCase{"/", "..", "/"},
                      CombineCase{"/a", "b/c/../d", "/a/b/d"}));

TEST(Dirname, Basic) {
  EXPECT_EQ(Dirname("/a/b"), "/a");
  EXPECT_EQ(Dirname("/a"), "/");
  EXPECT_EQ(Dirname("/"), "/");
  EXPECT_EQ(Dirname("/a/b/c/"), "/a/b");
}

TEST(Basename, Basic) {
  EXPECT_EQ(Basename("/a/b"), "b");
  EXPECT_EQ(Basename("/a"), "a");
  EXPECT_EQ(Basename("/"), "");
  EXPECT_EQ(Basename("/a/b/"), "b");
}

}  // namespace
}  // namespace pmig::vfs
