// The incremental migration data path: dirty-page delta dumps and the
// content-addressed segment cache.
//
// Three properties: (1) a delta dump restores to exactly the state a full dump
// restores to — bit-for-bit across text, data, stack, and registers; (2) a
// corrupted or mismatched base is rejected with a clean errno, never a silently
// wrong restore; (3) cached migrations under a seeded fault schedule replay
// bit-identically, and no process is ever lost.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/apps/checkpoint.h"
#include "src/core/dump_format.h"
#include "src/core/test_programs.h"
#include "src/core/tools.h"
#include "src/sim/hash.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using kernel::SyscallApi;
using test::kUserUid;
using test::World;
using test::WorldOptions;

WorldOptions TrackedOptions(int num_hosts = 2) {
  WorldOptions options;
  options.num_hosts = num_hosts;
  options.dirty_tracking = true;
  return options;
}

// Runs `fn` as root on `host`; returns its exit code.
int RunSystem(World& world, std::string_view host, kernel::NativeTask::Entry fn) {
  kernel::SpawnOptions opts;
  opts.tty = world.console(host);
  opts.cwd = "/";
  const int32_t pid = world.host(host).SpawnNative("system", std::move(fn), opts);
  world.RunUntilExited(host, pid, sim::Seconds(1200));
  return world.ExitInfoOf(host, pid).exit_code;
}

// Starts /bin/counter on brick, feeds it one line, dumps it (full or
// incremental), restarts it on schooner, and returns the restored process.
kernel::Proc* DumpAndRestart(World& world, bool incremental) {
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  EXPECT_GT(pid, 0);
  EXPECT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("hello\n");
  EXPECT_TRUE(world.RunUntilBlocked("brick", pid));

  std::vector<std::string> args = {"-p", std::to_string(pid)};
  if (incremental) args.push_back("--incremental");
  const int32_t dp = world.StartTool("brick", "dumpproc", args);
  EXPECT_TRUE(world.RunUntilExited("brick", dp));
  EXPECT_EQ(world.ExitInfoOf("brick", dp).exit_code, 0);

  const int32_t rs = world.StartTool("schooner", "restart",
                                     {"-p", std::to_string(pid), "-h", "brick"},
                                     kUserUid, world.console("schooner"));
  EXPECT_TRUE(world.RunUntilBlocked("schooner", rs));
  return world.host("schooner").FindProc(rs);
}

TEST(Incremental, DeltaRestoreIsBitIdenticalToFullRestore) {
  World full_world(TrackedOptions());
  World delta_world(TrackedOptions());
  kernel::Proc* full = DumpAndRestart(full_world, /*incremental=*/false);
  kernel::Proc* delta = DumpAndRestart(delta_world, /*incremental=*/true);
  ASSERT_NE(full, nullptr);
  ASSERT_NE(delta, nullptr);
  ASSERT_NE(full->vm, nullptr);
  ASSERT_NE(delta->vm, nullptr);

  // The restored memory images and CPU state must match exactly.
  EXPECT_EQ(full->vm->text, delta->vm->text);
  EXPECT_EQ(full->vm->data, delta->vm->data);
  EXPECT_EQ(full->vm->stack, delta->vm->stack);
  EXPECT_EQ(full->vm->cpu.pc, delta->vm->cpu.pc);
  for (int r = 0; r < vm::kNumRegs; ++r) {
    EXPECT_EQ(full->vm->cpu.regs[r], delta->vm->cpu.regs[r]) << "r" << r;
  }

  // And the delta-restored process keeps running correctly.
  delta_world.console("schooner")->Type("world\n");
  EXPECT_TRUE(delta_world.cluster().RunUntil([&] {
    return delta_world.console("schooner")->PlainOutput().find("r=3 s=3 k=3") !=
           std::string::npos;
  }));
  EXPECT_EQ(delta_world.FileContents("brick", "/u/user/counter.out"), "hello\nworld\n");
}

TEST(Incremental, SegmentBlobsLandInDumpHostCache) {
  World world(TrackedOptions());
  kernel::Proc* p = DumpAndRestart(world, /*incremental=*/true);
  ASSERT_NE(p, nullptr);
  // The dump seeded brick's cache with the text and base blobs; the restore
  // write-through seeded schooner's.
  kernel::Kernel& brick = world.host("brick");
  auto dir = brick.vfs().Resolve(brick.vfs().RootState(), core::kSegCacheDir,
                                 vfs::Follow::kAll, nullptr);
  ASSERT_TRUE(dir.ok());
  int blobs = 0;
  for (const auto& [name, inode] : dir->inode->entries) {
    uint64_t digest = 0;
    EXPECT_TRUE(sim::ParseHexDigest(name, &digest)) << name;
    EXPECT_EQ(sim::HashBytes(inode->data), digest) << name;
    ++blobs;
  }
  EXPECT_EQ(blobs, 2);  // text + delta base
  for (const auto& [name, inode] : dir->inode->entries) {
    EXPECT_TRUE(world.FileExists("schooner", std::string(core::kSegCacheDir) + "/" + name))
        << name;
  }
}

TEST(Incremental, CorruptedBaseBlobIsRejectedCleanly) {
  World world(TrackedOptions());
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("hello\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  const int32_t dp =
      world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid), "--incremental"});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  ASSERT_EQ(world.ExitInfoOf("brick", dp).exit_code, 0);

  // Flip a byte in every cached blob on the dump host (text and base alike):
  // whatever the restore fetches is now wrong for its digest.
  kernel::Kernel& brick = world.host("brick");
  auto dir = brick.vfs().Resolve(brick.vfs().RootState(), core::kSegCacheDir,
                                 vfs::Follow::kAll, nullptr);
  ASSERT_TRUE(dir.ok());
  ASSERT_FALSE(dir->inode->entries.empty());
  for (auto& [name, inode] : dir->inode->entries) {
    ASSERT_FALSE(inode->data.empty());
    inode->data[0] = static_cast<char>(inode->data[0] ^ 0xff);
  }

  // The restore must fail with a clean nonzero exit — no half-restored process.
  const int32_t rs = world.StartTool("schooner", "restart",
                                     {"-p", std::to_string(pid), "-h", "brick"},
                                     kUserUid, world.console("schooner"));
  ASSERT_TRUE(world.RunUntilExited("schooner", rs));
  EXPECT_NE(world.ExitInfoOf("schooner", rs).exit_code, 0);
  for (kernel::Proc* p : world.host("schooner").ListProcs()) {
    EXPECT_NE(p->kind, kernel::ProcKind::kVm);
  }
}

TEST(Incremental, MissingBlobsFailTheRestoreNotTheHost) {
  World world(TrackedOptions());
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  const int32_t dp =
      world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid), "--incremental"});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  ASSERT_EQ(world.ExitInfoOf("brick", dp).exit_code, 0);

  // Purge the dump host's cache: the dump now references blobs nobody has.
  kernel::Kernel& brick = world.host("brick");
  auto dir = brick.vfs().Resolve(brick.vfs().RootState(), core::kSegCacheDir,
                                 vfs::Follow::kAll, nullptr);
  ASSERT_TRUE(dir.ok());
  dir->inode->entries.clear();

  const int32_t rs = world.StartTool("schooner", "restart",
                                     {"-p", std::to_string(pid), "-h", "brick"},
                                     kUserUid, world.console("schooner"));
  ASSERT_TRUE(world.RunUntilExited("schooner", rs));
  EXPECT_NE(world.ExitInfoOf("schooner", rs).exit_code, 0);
}

TEST(Incremental, DumpModeNeedsTrackingArmed) {
  // Without track_dirty_pages, dumpproc --incremental degrades to a full dump
  // (setdumpmode refuses) and still succeeds end to end.
  World world;  // default options: no dirty tracking
  kernel::Proc* p = DumpAndRestart(world, /*incremental=*/true);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->migrated);
}

// --- sbrk() and dirty tracking ---


TEST(Incremental, MarkDirtyAfterHeapGrowthStaysInsideBitmap) {
  vm::VmContext ctx;
  ctx.text.assign(vm::kInstrBytes, 0);
  ctx.data.assign(100, 7);
  ctx.ArmDirtyTracking();
  const size_t tracked = ctx.dirty.data_dirty.size();
  // Grow well past the armed bitmap (as sbrk() does) and write into the new
  // space: the mark must clamp to the bitmap, not index past it.
  const size_t old_size = ctx.data.size();
  ctx.data.resize(old_size + 64 * vm::kDirtyPageBytes, 0);
  ctx.NoteDataResize(old_size, ctx.data.size());
  const uint8_t value = 42;
  EXPECT_TRUE(ctx.WriteBytes(vm::kDataBase + static_cast<uint32_t>(ctx.data.size()) - 1,
                             1, &value));
  EXPECT_EQ(ctx.dirty.data_dirty.size(), tracked);
  EXPECT_EQ(ctx.data.back(), 42);
}

constexpr std::string_view kHeapGrower = R"(
; Grows its heap by two pages, writes into the new space, then blocks reading
; its console (so tests can wait for it to quiesce, like /bin/counter).
        .text
start:  movi r0, 2048
        sys  SYS_brk
        mov  r5, r0             ; r5 = base of the new heap
        movi r4, 42
        stb  r4, r5, 0
        stb  r4, r5, 1024
loop:   movi r0, 0
        movi r1, buf
        movi r2, 1
        sys  SYS_read
        jmp  loop
        .data
seed:   .ascii "seed"
buf:    .space 8
)";

constexpr std::string_view kHeapShrinker = R"(
; Shrinks its heap by four bytes and grows it right back: the tail of the
; data segment is now zeroes, with no store instruction ever touching it.
        .text
start:  movi r0, -4
        sys  SYS_brk
        movi r0, 4
        sys  SYS_brk
loop:   movi r0, 0
        movi r1, buf
        movi r2, 1
        sys  SYS_read
        jmp  loop
        .data
pad:    .space 1012
buf:    .space 8
tail:   .ascii "AAAAAAAA"
)";

TEST(Incremental, SbrkGrownHeapFallsBackToFullDumpAndRestores) {
  World world(TrackedOptions());
  core::InstallProgram(world.host("brick"), "/bin/grower", kHeapGrower);
  const int32_t pid = world.StartVm("brick", "/bin/grower");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  kernel::Proc* src = world.host("brick").FindProc(pid);
  ASSERT_NE(src, nullptr);
  ASSERT_NE(src->vm, nullptr);
  const std::vector<uint8_t> expected = src->vm->data;
  const size_t base_size = src->vm->dirty.base.size();
  ASSERT_EQ(expected.size(), base_size + 2048);
  EXPECT_EQ(expected[base_size], 42);
  EXPECT_EQ(expected[base_size + 1024], 42);

  const int32_t dp =
      world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid), "--incremental"});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  ASSERT_EQ(world.ExitInfoOf("brick", dp).exit_code, 0);

  // The grown segment cannot be a delta against the exec-time base: the dump
  // must have fallen back to a restorable full a.out.
  EXPECT_FALSE(core::IsIncrAout(world.FileContents("brick", core::DumpPaths::For(pid).aout)));

  const int32_t rs = world.StartTool("schooner", "restart",
                                     {"-p", std::to_string(pid), "-h", "brick"},
                                     kUserUid, world.console("schooner"));
  ASSERT_TRUE(world.RunUntilBlocked("schooner", rs));
  kernel::Proc* restored = world.host("schooner").FindProc(rs);
  ASSERT_NE(restored, nullptr);
  ASSERT_NE(restored->vm, nullptr);
  EXPECT_EQ(restored->vm->data, expected);
}

TEST(Incremental, SbrkShrinkRegrowStillDeltaDumpsExactly) {
  World world(TrackedOptions());
  core::InstallProgram(world.host("brick"), "/bin/shrinker", kHeapShrinker);
  const int32_t pid = world.StartVm("brick", "/bin/shrinker");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  kernel::Proc* src = world.host("brick").FindProc(pid);
  ASSERT_NE(src, nullptr);
  ASSERT_NE(src->vm, nullptr);
  const std::vector<uint8_t> expected = src->vm->data;
  // The size is back at the base's, but the last four bytes were zeroed by the
  // shrink/regrow without a single tracked store.
  ASSERT_EQ(expected.size(), src->vm->dirty.base.size());
  ASSERT_EQ(expected.size(), 1028u);
  for (size_t i = 1024; i < 1028; ++i) EXPECT_EQ(expected[i], 0u) << i;

  const int32_t dp =
      world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid), "--incremental"});
  ASSERT_TRUE(world.RunUntilExited("brick", dp));
  ASSERT_EQ(world.ExitInfoOf("brick", dp).exit_code, 0);
  // Same size as the base, so this dump really is a delta — and the
  // resize-dirtied page rides along, making it reconstruct bit-exactly.
  ASSERT_TRUE(core::IsIncrAout(world.FileContents("brick", core::DumpPaths::For(pid).aout)));

  const int32_t rs = world.StartTool("schooner", "restart",
                                     {"-p", std::to_string(pid), "-h", "brick"},
                                     kUserUid, world.console("schooner"));
  ASSERT_TRUE(world.RunUntilBlocked("schooner", rs));
  kernel::Proc* restored = world.host("schooner").FindProc(rs);
  ASSERT_NE(restored, nullptr);
  ASSERT_NE(restored->vm, nullptr);
  EXPECT_EQ(restored->vm->data, expected);
}

TEST(Incremental, CachedMigrateOfSbrkProcessNeverLosesIt) {
  World world(TrackedOptions());
  core::InstallProgram(world.host("brick"), "/bin/grower", kHeapGrower);
  const int32_t pid = world.StartVm("brick", "/bin/grower");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  kernel::Proc* src = world.host("brick").FindProc(pid);
  ASSERT_NE(src, nullptr);
  const std::vector<uint8_t> expected = src->vm->data;

  net::Network* net = &world.cluster().network();
  auto rc = std::make_shared<int>(-1);
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const int32_t mig = world.host("brick").SpawnNative(
      "migrate",
      [rc, net, pid](SyscallApi& api) {
        core::MigrateOptions mo = core::MigrateOptions::Robust();
        mo.cached = true;
        *rc = core::Migrate(api, *net, pid, "brick", "schooner", /*use_daemon=*/false, mo);
        return *rc;
      },
      opts);
  ASSERT_TRUE(world.RunUntilExited("brick", mig, sim::Seconds(600)));
  EXPECT_EQ(*rc, 0);
  const int32_t moved_pid = world.FindPidByCommand("schooner", "migrated");
  ASSERT_GT(moved_pid, 0);
  kernel::Proc* moved = world.host("schooner").FindProc(moved_pid);
  ASSERT_NE(moved, nullptr);
  ASSERT_NE(moved->vm, nullptr);
  EXPECT_EQ(moved->vm->data, expected);
}

// --- Checkpoint dedup + incremental checkpoints ---

TEST(Incremental, CheckpointSkipsUnchangedOpenFileCopies) {
  World world(TrackedOptions(1));
  world.host("brick").vfs().SetupMkdirAll("/ckpt");
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("one\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  auto current = std::make_shared<int32_t>(pid);
  auto take = [&world, current](int index) {
    return RunSystem(world, "brick", [current, index](SyscallApi& api) {
      const auto r = apps::TakeCheckpoint(api, *current, "/ckpt", index,
                                          /*incremental=*/true);
      if (!r.ok()) return 1;
      *current = r->new_pid;
      return 0;
    });
  };
  ASSERT_EQ(take(0), 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", *current));
  // Nothing written to counter.out between the two snapshots: checkpoint 1 must
  // reuse checkpoint 0's copy instead of writing its own.
  ASSERT_EQ(take(1), 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", *current));
  EXPECT_TRUE(world.FileExists("brick", "/ckpt/0.open3"));
  EXPECT_FALSE(world.FileExists("brick", "/ckpt/1.open3"));

  // The file changes before checkpoint 2: a fresh copy is taken again.
  world.console("brick")->Type("two\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", *current));
  ASSERT_EQ(take(2), 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", *current));
  EXPECT_TRUE(world.FileExists("brick", "/ckpt/2.open3"));

  // Restoring checkpoint 1 replays through the reused copy: counter.out goes
  // back to its checkpoint-1 content and the counters resume from there.
  const int code = RunSystem(world, "brick", [](SyscallApi& api) {
    return apps::RestoreCheckpoint(api, "/ckpt", 1).ok() ? 0 : 1;
  });
  ASSERT_EQ(code, 0);
  EXPECT_EQ(world.FileContents("brick", "/u/user/counter.out"), "one\n");
  const int32_t restored = world.FindPidByCommand("brick", "migrated");
  ASSERT_GT(restored, 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", restored));
  world.console("brick")->Type("three\n");
  // (the console already shows an old "r=3" from before the rollback, so wait on
  // the file itself)
  EXPECT_TRUE(world.cluster().RunUntil([&] {
    return world.FileContents("brick", "/u/user/counter.out") == "one\nthree\n";
  }));
}

TEST(Incremental, CheckpointDedupDistrustsBareHashMatch) {
  World world(TrackedOptions(1));
  world.host("brick").vfs().SetupMkdirAll("/ckpt");
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("one\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  auto current = std::make_shared<int32_t>(pid);
  auto take = [&world, current](int index) {
    return RunSystem(world, "brick", [current, index](SyscallApi& api) {
      const auto r = apps::TakeCheckpoint(api, *current, "/ckpt", index,
                                          /*incremental=*/true);
      if (!r.ok()) return 1;
      *current = r->new_pid;
      return 0;
    });
  };
  ASSERT_EQ(take(0), 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", *current));

  // Corrupt checkpoint 0's saved copy without touching its recorded hash. The
  // live file still hashes to the manifest value — exactly what an FNV
  // collision would look like — but the stored bytes no longer match, so the
  // dedup must refuse the reuse and write a fresh copy.
  kernel::Kernel& brick = world.host("brick");
  auto copy = brick.vfs().Resolve(brick.vfs().RootState(), "/ckpt/0.open3",
                                  vfs::Follow::kAll, nullptr);
  ASSERT_TRUE(copy.ok());
  ASSERT_FALSE(copy->inode->data.empty());
  copy->inode->data[0] = static_cast<char>(copy->inode->data[0] ^ 0xff);

  ASSERT_EQ(take(1), 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", *current));
  EXPECT_TRUE(world.FileExists("brick", "/ckpt/1.open3"));
  EXPECT_EQ(world.FileContents("brick", "/ckpt/1.open3"), "one\n");
}

TEST(Incremental, CheckpointDirectoryIsSelfContained) {
  // An incremental checkpoint archives the segment blobs it references, so a
  // restore succeeds even after /var/segcache is purged.
  World world(TrackedOptions(1));
  world.host("brick").vfs().SetupMkdirAll("/ckpt");
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));
  world.console("brick")->Type("one\n");
  ASSERT_TRUE(world.RunUntilBlocked("brick", pid));

  auto current = std::make_shared<int32_t>(pid);
  ASSERT_EQ(RunSystem(world, "brick",
                      [current](SyscallApi& api) {
                        const auto r = apps::TakeCheckpoint(api, *current, "/ckpt", 0,
                                                            /*incremental=*/true);
                        if (!r.ok()) return 1;
                        *current = r->new_pid;
                        return 0;
                      }),
            0);

  // Purge the cache, kill the live process, then restore from the directory.
  kernel::Kernel& brick = world.host("brick");
  auto dir = brick.vfs().Resolve(brick.vfs().RootState(), core::kSegCacheDir,
                                 vfs::Follow::kAll, nullptr);
  ASSERT_TRUE(dir.ok());
  ASSERT_FALSE(dir->inode->entries.empty());
  dir->inode->entries.clear();
  const Status killed = brick.PostSignal(*current, vm::abi::kSigKill, nullptr);
  ASSERT_TRUE(killed.ok());
  ASSERT_TRUE(world.RunUntilExited("brick", *current));

  const int code = RunSystem(world, "brick", [](SyscallApi& api) {
    return apps::RestoreCheckpoint(api, "/ckpt", 0).ok() ? 0 : 1;
  });
  ASSERT_EQ(code, 0);
  const int32_t restored = world.FindPidByCommand("brick", "migrated");
  ASSERT_GT(restored, 0);
  ASSERT_TRUE(world.RunUntilBlocked("brick", restored));
  world.console("brick")->Type("two\n");
  ASSERT_TRUE(world.cluster().RunUntil([&] {
    return world.console("brick")->PlainOutput().find("r=3 s=3 k=3") != std::string::npos;
  }));
}

// --- Chaos soak with --cached ---

constexpr std::string_view kTickerSource = R"(
        .text
start:
loop:   movi r0, 2
        sys  SYS_sleep
        jmp  loop
)";

constexpr int kVictims = 6;

std::string RunCachedChaos(uint64_t seed) {
  WorldOptions options;
  options.num_hosts = 3;
  options.metrics = true;
  options.dirty_tracking = true;
  options.faults.enabled = true;
  options.faults.seed = seed;
  options.faults.net_send_failure_rate = 0.25;
  options.faults.dump_corruption_rate = 0.15;
  options.faults.crashes.push_back({"schooner", sim::Seconds(8), sim::Seconds(20)});
  World world(options);

  core::InstallProgram(world.host("brick"), "/bin/ticker", kTickerSource);
  std::vector<int32_t> victims;
  for (int i = 0; i < kVictims; ++i) {
    const int32_t pid = world.StartVm("brick", "/bin/ticker");
    EXPECT_GT(pid, 0);
    victims.push_back(pid);
  }
  for (const int32_t pid : victims) {
    EXPECT_TRUE(world.cluster().RunUntil(
        [&world, pid] {
          const kernel::Proc* p = world.host("brick").FindProc(pid);
          return p != nullptr && p->state == kernel::ProcState::kSleeping;
        },
        sim::Seconds(120)));
  }

  net::Network* net = &world.cluster().network();
  std::ostringstream fp;
  for (int i = 0; i < kVictims; ++i) {
    const int32_t pid = victims[static_cast<size_t>(i)];
    const std::string target = (i % 2 == 0) ? "schooner" : "brador";
    auto rc = std::make_shared<int>(-1);
    kernel::SpawnOptions opts;
    opts.creds = {kUserUid, 10, kUserUid, 10};
    const int32_t mig = world.host("brick").SpawnNative(
        "migrate",
        [rc, net, pid, target](SyscallApi& api) {
          core::MigrateOptions opts = core::MigrateOptions::Robust();
          opts.cached = true;
          *rc = core::Migrate(api, *net, pid, "brick", target, /*use_daemon=*/false, opts);
          return *rc;
        },
        opts);
    EXPECT_TRUE(world.RunUntilExited("brick", mig, sim::Seconds(600)));
    fp << "rc" << i << "=" << *rc << ";";
  }

  world.cluster().faults().Disarm();
  world.cluster().RunFor(sim::Seconds(40));

  int total_alive = 0;
  for (const std::string host : {"brick", "schooner", "brador"}) {
    int alive = 0;
    for (kernel::Proc* p : world.host(host).ListProcs()) {
      if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++alive;
    }
    total_alive += alive;
    fp << host << "=" << alive << ";";
  }
  EXPECT_EQ(total_alive, kVictims) << "seed " << seed << " lost a process";

  fp << "t=" << world.cluster().clock().now() << ";";
  const sim::MetricsRegistry metrics = world.cluster().AggregateMetrics();
  for (const auto& [name, value] : metrics.counters()) {
    fp << name << "=" << value << ";";
  }
  return fp.str();
}

TEST(Incremental, CachedChaosSoakReplaysBitIdentically) {
  const uint64_t seed = 7;
  const std::string first = RunCachedChaos(seed);
  const std::string second = RunCachedChaos(seed);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace pmig
