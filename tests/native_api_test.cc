// The native SyscallApi conveniences and process-level behaviours that the tools
// rely on: ReadLine/ReadAll, Sleep accuracy, BlockUntil, preemption fairness, and
// name-tracking under the fixed-size storage policy.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace pmig {
namespace {

using kernel::SyscallApi;
using test::kUserUid;
using test::World;

int RunUser(World& world, kernel::NativeTask::Entry fn) {
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.cwd = "/u/user";
  opts.tty = world.console("brick");
  const int32_t pid = world.host("brick").SpawnNative("api", std::move(fn), opts);
  world.RunUntilExited("brick", pid);
  return world.ExitInfoOf("brick", pid).exit_code;
}

TEST(NativeApi, ReadLineSplitsRegularFiles) {
  World world;
  world.host("brick").vfs().SetupCreateFile("/u/user/lines.txt",
                                            "one\ntwo\nthree", kUserUid, 0644);
  const int code = RunUser(world, [](SyscallApi& api) {
    const Result<int> fd = api.Open("lines.txt", vm::abi::kORdOnly);
    if (!fd.ok()) return 1;
    if (api.ReadLine(*fd).value_or("") != "one\n") return 2;
    if (api.ReadLine(*fd).value_or("") != "two\n") return 3;
    if (api.ReadLine(*fd).value_or("") != "three") return 4;  // no trailing newline
    if (!api.ReadLine(*fd).value_or("x").empty()) return 5;   // EOF
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(NativeApi, ReadLineHandlesLongLines) {
  World world;
  const std::string long_line(1000, 'z');
  world.host("brick").vfs().SetupCreateFile("/u/user/long.txt", long_line + "\nend\n",
                                            kUserUid, 0644);
  const int code = RunUser(world, [&long_line](SyscallApi& api) {
    const Result<int> fd = api.Open("long.txt", vm::abi::kORdOnly);
    if (!fd.ok()) return 1;
    // ReadLine reads in 256-byte chunks: a 1000-char line arrives in pieces, each
    // a prefix of the line — concatenating them must reconstruct it exactly.
    std::string assembled;
    while (assembled.size() < long_line.size() + 1) {
      const Result<std::string> piece = api.ReadLine(fd.value());
      if (!piece.ok() || piece->empty()) return 2;
      assembled += *piece;
    }
    if (assembled != long_line + "\n") return 3;
    if (api.ReadLine(*fd).value_or("") != "end\n") return 4;
    return 0;
  });
  EXPECT_EQ(code, 0);
}

TEST(NativeApi, ReadAllConcatenatesWholeFile) {
  World world;
  const std::string big(10000, 'b');
  world.host("brick").vfs().SetupCreateFile("/u/user/big", big, kUserUid, 0644);
  const int code = RunUser(world, [&big](SyscallApi& api) {
    const Result<int> fd = api.Open("big", vm::abi::kORdOnly);
    if (!fd.ok()) return 1;
    const Result<std::string> all = api.ReadAll(*fd);
    return (all.ok() && *all == big) ? 0 : 2;
  });
  EXPECT_EQ(code, 0);
}

TEST(NativeApi, SleepAdvancesVirtualTimeAccurately) {
  World world;
  auto slept = std::make_shared<sim::Nanos>(0);
  RunUser(world, [slept](SyscallApi& api) {
    const sim::Nanos t0 = api.Now();
    api.Sleep(sim::Seconds(7));
    *slept = api.Now() - t0;
    return 0;
  });
  EXPECT_GE(*slept, sim::Seconds(7));
  EXPECT_LE(*slept, sim::Seconds(7) + sim::Millis(50));  // within a few quanta
}

TEST(NativeApi, BlockUntilWaitsForCrossProcessCondition) {
  World world;
  auto flag = std::make_shared<bool>(false);
  auto observed_at = std::make_shared<sim::Nanos>(0);
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  const int32_t waiter = world.host("brick").SpawnNative(
      "waiter",
      [flag, observed_at](SyscallApi& api) {
        api.BlockUntil([flag] { return *flag; });
        *observed_at = api.Now();
        return 0;
      },
      opts);
  world.host("brick").SpawnNative("setter",
                                  [flag](SyscallApi& api) {
                                    api.Sleep(sim::Seconds(5));
                                    *flag = true;
                                    return 0;
                                  },
                                  opts);
  ASSERT_TRUE(world.RunUntilExited("brick", waiter, sim::Seconds(60)));
  EXPECT_GE(*observed_at, sim::Seconds(5));
}

TEST(NativeApi, PreemptionInterleavesNativeAndVmWork) {
  // A syscall-heavy native process and a compute-bound VM process share one CPU:
  // both make progress; neither starves.
  World world;
  const int32_t hog = world.StartVm("brick", "/bin/hog", {"hog", "300000"});
  auto loops = std::make_shared<int>(0);
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.cwd = "/u/user";
  const int32_t churner = world.host("brick").SpawnNative(
      "churner",
      [loops](SyscallApi& api) {
        for (int i = 0; i < 200; ++i) {
          const Result<int> fd = api.Creat("churn", 0644);
          if (!fd.ok()) return 1;
          const Status st = api.Close(*fd);
          (void)st;
          ++*loops;
        }
        return 0;
      },
      opts);
  world.cluster().RunFor(sim::Millis(400));
  kernel::Proc* h = world.host("brick").FindProc(hog);
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->utime, 0);
  EXPECT_GT(*loops, 0);
  ASSERT_TRUE(world.RunUntilExited("brick", churner, sim::Seconds(120)));
  ASSERT_TRUE(world.RunUntilExited("brick", hog, sim::Seconds(120)));
}

TEST(NativeApi, FixedNameStorageTruncatesLongPaths) {
  World world;
  kernel::Kernel& k = world.host("brick");
  k.mutable_config().name_storage = kernel::KernelConfig::NameStorage::kFixed;
  k.mutable_config().fixed_name_bytes = 32;
  auto name = std::make_shared<std::string>();
  const std::string deep = "/u/user/a-very-long-directory-name-indeed";
  k.vfs().SetupMkdirAll(deep)->uid = kUserUid;
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.cwd = deep;
  const int32_t pid = k.SpawnNative(
      "nt",
      [name](SyscallApi& api) {
        const Result<int> fd = api.Creat("file-with-a-long-name.dat", 0644);
        if (!fd.ok()) return 1;
        const auto& f = api.proc().fds[static_cast<size_t>(*fd)];
        if (f->name.has_value()) *name = *f->name;
        return 0;
      },
      opts);
  world.RunUntilExited("brick", pid);
  // Fixed 32-byte slots can hold at most 31 characters: the stored name is a
  // truncated prefix — exactly the breakage the paper's design avoided.
  EXPECT_EQ(name->size(), 31u);
  EXPECT_EQ(deep.compare(0, 31, *name), 0);
}

TEST(NativeApi, SyscallsCountedInStats) {
  World world;
  kernel::Kernel& k = world.host("brick");
  const int64_t before = k.stats().syscalls;
  RunUser(world, [](SyscallApi& api) {
    for (int i = 0; i < 10; ++i) {
      const Result<kernel::StatInfo> info = api.Stat("/");
      if (!info.ok()) return 1;
    }
    return 0;
  });
  EXPECT_GE(k.stats().syscalls - before, 10);
}

}  // namespace
}  // namespace pmig
