// VFS tests: inode trees, path resolution, symlinks, mounts, NFS remoteness —
// including the exact /n/classic/n/brador aliasing failure from Section 4.3.

#include "src/vfs/vfs.h"

#include <gtest/gtest.h>

#include "src/sim/cost_model.h"

namespace pmig::vfs {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  VfsTest() : fs_("disk"), vfs_(&fs_, &costs_) {}

  Result<InodePtr> ResolveInode(const std::string& path, Follow follow = Follow::kAll) {
    auto r = vfs_.Resolve(vfs_.RootState(), path, follow, nullptr);
    if (!r.ok()) return r.error();
    return r->inode;
  }

  sim::CostModel costs_;
  Filesystem fs_;
  Vfs vfs_;
};

TEST_F(VfsTest, RootResolves) {
  auto r = ResolveInode("/");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, fs_.root());
}

TEST_F(VfsTest, EmptyPathIsNoEnt) {
  EXPECT_EQ(ResolveInode("").error(), Errno::kNoEnt);
}

TEST_F(VfsTest, SetupAndLookup) {
  const InodePtr file = vfs_.SetupCreateFile("/a/b/c.txt", "hello");
  auto r = ResolveInode("/a/b/c.txt");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, file);
  EXPECT_EQ((*r)->data, "hello");
}

TEST_F(VfsTest, MissingComponentIsNoEnt) {
  vfs_.SetupMkdirAll("/a");
  EXPECT_EQ(ResolveInode("/a/nope").error(), Errno::kNoEnt);
  EXPECT_EQ(ResolveInode("/nope/deep").error(), Errno::kNoEnt);
}

TEST_F(VfsTest, FileAsDirectoryIsNotDir) {
  vfs_.SetupCreateFile("/f", "");
  EXPECT_EQ(ResolveInode("/f/x").error(), Errno::kNotDir);
}

TEST_F(VfsTest, DotAndDotDot) {
  vfs_.SetupMkdirAll("/a/b");
  auto r = ResolveInode("/a/b/../b/./.");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->IsDir());
  // ".." above the root stays at the root.
  auto root = ResolveInode("/../../a/..");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, fs_.root());
}

TEST_F(VfsTest, RelativeResolutionFromCwd) {
  vfs_.SetupMkdirAll("/a/b");
  vfs_.SetupCreateFile("/a/b/f", "x");
  auto cwd = vfs_.Resolve(vfs_.RootState(), "/a", Follow::kAll, nullptr);
  ASSERT_TRUE(cwd.ok());
  auto r = vfs_.Resolve(cwd->state, "b/f", Follow::kAll, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->inode->data, "x");
}

TEST_F(VfsTest, SymlinkFollowedInMiddle) {
  vfs_.SetupCreateFile("/real/target", "data");
  vfs_.SetupSymlink("/link", "/real");
  auto r = ResolveInode("/link/target");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->data, "data");
}

TEST_F(VfsTest, RelativeSymlinkTarget) {
  vfs_.SetupCreateFile("/a/real", "y");
  vfs_.SetupSymlink("/a/alias", "real");
  auto r = ResolveInode("/a/alias");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->data, "y");
}

TEST_F(VfsTest, SymlinkWithDotDotTarget) {
  vfs_.SetupCreateFile("/x/f", "z");
  vfs_.SetupMkdirAll("/a");
  vfs_.SetupSymlink("/a/up", "../x/f");
  auto r = ResolveInode("/a/up");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->data, "z");
}

TEST_F(VfsTest, NoFollowStopsAtFinalSymlink) {
  vfs_.SetupCreateFile("/real", "");
  vfs_.SetupSymlink("/link", "/real");
  auto r = ResolveInode("/link", Follow::kNotLast);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->IsSymlink());
}

TEST_F(VfsTest, SymlinkChainWithinLimit) {
  vfs_.SetupCreateFile("/end", "ok");
  std::string prev = "/end";
  for (int i = 0; i < kMaxSymlinkExpansions; ++i) {
    const std::string name = "/l" + std::to_string(i);
    vfs_.SetupSymlink(name, prev);
    prev = name;
  }
  auto r = ResolveInode(prev);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->data, "ok");
}

TEST_F(VfsTest, SymlinkLoopIsEloop) {
  vfs_.SetupSymlink("/a", "/b");
  vfs_.SetupSymlink("/b", "/a");
  EXPECT_EQ(ResolveInode("/a").error(), Errno::kLoop);
}

TEST_F(VfsTest, SelfLoopIsEloop) {
  vfs_.SetupSymlink("/self", "/self");
  EXPECT_EQ(ResolveInode("/self").error(), Errno::kLoop);
}

TEST_F(VfsTest, ReadlinkReturnsTarget) {
  vfs_.SetupSymlink("/l", "/anywhere");
  auto r = vfs_.Readlink(vfs_.RootState(), "/l", nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "/anywhere");
}

TEST_F(VfsTest, ReadlinkOnNonSymlinkIsEinval) {
  vfs_.SetupCreateFile("/f", "");
  EXPECT_EQ(vfs_.Readlink(vfs_.RootState(), "/f", nullptr).error(), Errno::kInval);
}

TEST_F(VfsTest, ResolveParentExisting) {
  vfs_.SetupCreateFile("/d/f", "");
  auto rp = vfs_.ResolveParent(vfs_.RootState(), "/d/f", nullptr);
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp->name, "f");
  EXPECT_NE(rp->existing, nullptr);
}

TEST_F(VfsTest, ResolveParentMissingLeaf) {
  vfs_.SetupMkdirAll("/d");
  auto rp = vfs_.ResolveParent(vfs_.RootState(), "/d/new", nullptr);
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rp->existing, nullptr);
}

TEST_F(VfsTest, ResolveParentRejectsDotNames) {
  EXPECT_EQ(vfs_.ResolveParent(vfs_.RootState(), "/d/..", nullptr).error(), Errno::kInval);
  EXPECT_EQ(vfs_.ResolveParent(vfs_.RootState(), "/", nullptr).error(), Errno::kInval);
}

TEST_F(VfsTest, ReadWriteAtOffsets) {
  const InodePtr f = vfs_.SetupCreateFile("/f", "0123456789");
  std::string out;
  EXPECT_EQ(vfs_.ReadAt(*f, 3, 4, &out, nullptr), 4);
  EXPECT_EQ(out, "3456");
  EXPECT_EQ(vfs_.ReadAt(*f, 8, 100, &out, nullptr), 2);
  EXPECT_EQ(out, "89");
  EXPECT_EQ(vfs_.ReadAt(*f, 20, 10, &out, nullptr), 0);  // past EOF

  EXPECT_EQ(vfs_.WriteAt(*f, 10, "AB", nullptr), 2);
  EXPECT_EQ(f->data, "0123456789AB");
  EXPECT_EQ(vfs_.WriteAt(*f, 14, "XY", nullptr), 2);  // hole filled with NULs
  EXPECT_EQ(f->data.size(), 16u);
  EXPECT_EQ(f->data[12], '\0');
}

TEST_F(VfsTest, TruncateGrowsAndShrinks) {
  const InodePtr f = vfs_.SetupCreateFile("/f", "abcdef");
  ASSERT_TRUE(vfs_.Truncate(*f, 3, nullptr).ok());
  EXPECT_EQ(f->data, "abc");
  ASSERT_TRUE(vfs_.Truncate(*f, 5, nullptr).ok());
  EXPECT_EQ(f->data.size(), 5u);
  EXPECT_EQ(vfs_.Truncate(*f, -1, nullptr).error(), Errno::kInval);
}

TEST(Filesystem, LinkUnlinkSemantics) {
  Filesystem fs("d");
  const InodePtr dir = fs.root();
  const InodePtr f = fs.NewRegular(0);
  ASSERT_TRUE(fs.Link(dir, "f", f).ok());
  EXPECT_EQ(f->nlink, 1);
  EXPECT_EQ(fs.Link(dir, "f", f).error(), Errno::kExist);
  ASSERT_TRUE(fs.Link(dir, "g", f).ok());  // hard link
  EXPECT_EQ(f->nlink, 2);
  ASSERT_TRUE(fs.Unlink(dir, "f").ok());
  EXPECT_EQ(f->nlink, 1);
  EXPECT_EQ(fs.Unlink(dir, "missing").error(), Errno::kNoEnt);
}

TEST(Filesystem, UnlinkNonEmptyDirRefused) {
  Filesystem fs("d");
  const InodePtr dir = fs.NewDirectory(0);
  ASSERT_TRUE(fs.Link(fs.root(), "dir", dir).ok());
  ASSERT_TRUE(fs.Link(dir, "f", fs.NewRegular(0)).ok());
  EXPECT_EQ(fs.Unlink(fs.root(), "dir").error(), Errno::kIsDir);
}

TEST(Filesystem, BadLinkNames) {
  Filesystem fs("d");
  EXPECT_EQ(fs.Link(fs.root(), ".", fs.NewRegular(0)).error(), Errno::kInval);
  EXPECT_EQ(fs.Link(fs.root(), "..", fs.NewRegular(0)).error(), Errno::kInval);
  EXPECT_EQ(fs.Link(fs.root(), "", fs.NewRegular(0)).error(), Errno::kInval);
}

TEST(CheckAccess, OwnerOtherAndRoot) {
  Inode inode;
  inode.uid = 100;
  inode.mode = 0640;
  EXPECT_TRUE(CheckAccess(inode, 100, kWantRead));
  EXPECT_TRUE(CheckAccess(inode, 100, kWantWrite));
  EXPECT_FALSE(CheckAccess(inode, 100, kWantExec));
  EXPECT_FALSE(CheckAccess(inode, 200, kWantRead));  // "other" bits are 0
  EXPECT_TRUE(CheckAccess(inode, 0, kWantExec));     // root bypasses
}

// --- Mounts and the NFS namespace ---

class MountTest : public ::testing::Test {
 protected:
  MountTest()
      : fs_a_("classic"),
        fs_b_("brador"),
        vfs_a_(&fs_a_, &costs_),
        vfs_b_(&fs_b_, &costs_) {
    // Each machine sees the other's root at /n/<host> (plus a self-loop).
    vfs_a_.AddMount(vfs_a_.SetupMkdirAll("/n/brador"), fs_b_.root());
    vfs_a_.AddMount(vfs_a_.SetupMkdirAll("/n/classic"), fs_a_.root());
    vfs_b_.AddMount(vfs_b_.SetupMkdirAll("/n/classic"), fs_a_.root());
    vfs_b_.AddMount(vfs_b_.SetupMkdirAll("/n/brador"), fs_b_.root());
  }

  sim::CostModel costs_;
  Filesystem fs_a_;  // "classic"
  Filesystem fs_b_;  // "brador" (the file server)
  Vfs vfs_a_;
  Vfs vfs_b_;
};

TEST_F(MountTest, CrossMountResolution) {
  vfs_b_.SetupCreateFile("/usr/foo", "remote bytes");
  auto r = vfs_a_.Resolve(vfs_a_.RootState(), "/n/brador/usr/foo", Follow::kAll, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->inode->data, "remote bytes");
  EXPECT_TRUE(vfs_a_.InodeIsRemote(*r->inode));
  EXPECT_FALSE(vfs_b_.InodeIsRemote(*r->inode));
}

TEST_F(MountTest, DotDotOutOfMountReturnsToLocalSide) {
  vfs_b_.SetupMkdirAll("/usr");
  vfs_a_.SetupCreateFile("/n/marker", "local");
  auto r = vfs_a_.Resolve(vfs_a_.RootState(), "/n/brador/usr/../../marker", Follow::kAll,
                          nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->inode->data, "local");  // ".." climbed back onto classic's /n
}

// Section 4.3's exact scenario: on classic, /usr is a symlink to /n/brador/usr.
// A program opened /usr/foo; prepending /n/classic textually gives
// /n/classic/usr/foo, whose embedded symlink re-expands *on the resolving
// machine* — "NFS does not allow this syntax" / the alias breaks. Resolving the
// link first (dumpproc's job) gives the stable name /n/brador/usr/foo.
TEST_F(MountTest, PaperSection43SymlinkAliasing) {
  vfs_b_.SetupCreateFile("/usr/foo", "the file");
  vfs_a_.SetupSymlink("/usr", "/n/brador/usr");

  // On classic itself /usr/foo works:
  auto direct = vfs_a_.Resolve(vfs_a_.RootState(), "/usr/foo", Follow::kAll, nullptr);
  ASSERT_TRUE(direct.ok());

  // The naive rewrite /n/classic/usr/foo, resolved on brador, follows classic's
  // /usr symlink whose absolute target restarts at *brador's* root — it only
  // works by accident if brador mounts match, and in the historical NFS it did
  // not work at all. We model the failure by the symlink restarting at the
  // resolving machine's root: /n/brador/usr must exist ON BRADOR'S VIEW for it
  // to resolve. Remove brador's self-mount to show the historical breakage.
  Filesystem fs_c("spare");
  Vfs vfs_c(&fs_c, &costs_);
  vfs_c.AddMount(vfs_c.SetupMkdirAll("/n/classic"), fs_a_.root());
  // vfs_c has no /n/brador: the naive name breaks.
  auto naive = vfs_c.Resolve(vfs_c.RootState(), "/n/classic/usr/foo", Follow::kAll, nullptr);
  EXPECT_FALSE(naive.ok());

  // The resolved name works from anywhere brador is mounted:
  vfs_c.AddMount(vfs_c.SetupMkdirAll("/n/brador"), fs_b_.root());
  auto resolved = vfs_c.Resolve(vfs_c.RootState(), "/n/brador/usr/foo", Follow::kAll, nullptr);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->inode->data, "the file");
}

// Cost accounting: remote lookups charge NFS RPC waits; local ones do not.
class RecordingSink : public CostSink {
 public:
  void ChargeCpu(sim::Nanos amount) override { cpu += amount; }
  void ChargeWait(sim::Nanos amount) override { wait += amount; }
  sim::Nanos cpu = 0;
  sim::Nanos wait = 0;
};

TEST_F(MountTest, RemoteLookupsChargeRpc) {
  vfs_b_.SetupCreateFile("/usr/foo", "x");
  RecordingSink local, remote;
  ASSERT_TRUE(vfs_a_.Resolve(vfs_a_.RootState(), "/n", Follow::kAll, &local).ok());
  ASSERT_TRUE(
      vfs_a_.Resolve(vfs_a_.RootState(), "/n/brador/usr/foo", Follow::kAll, &remote).ok());
  EXPECT_EQ(local.wait, 0);
  EXPECT_GE(remote.wait, 2 * costs_.nfs_rpc);  // "usr" and "foo" looked up remotely
}

TEST_F(MountTest, RemoteWritePaysServerDisk) {
  const InodePtr f = vfs_b_.SetupCreateFile("/usr/foo", "");
  RecordingSink sink;
  vfs_a_.WriteAt(*f, 0, std::string(100, 'x'), &sink);
  EXPECT_GE(sink.wait, costs_.nfs_rpc + costs_.disk_block_latency);
}

TEST_F(MountTest, SelfMountIsLocal) {
  vfs_a_.SetupCreateFile("/tmp/f", "self");
  auto r = vfs_a_.Resolve(vfs_a_.RootState(), "/n/classic/tmp/f", Follow::kAll, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(vfs_a_.InodeIsRemote(*r->inode));
}

}  // namespace
}  // namespace pmig::vfs
