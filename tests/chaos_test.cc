// Chaos soak: many migrations under a randomized-but-seeded fault schedule.
//
// The invariant is the PR's contract — a migration pipeline that never loses a
// process. Whatever the injected faults do to an individual migrate command
// (retry, fall back, give up), every victim must end the run alive on *some*
// host, and no dump files may be left behind. And because every fault is drawn
// from a seeded RNG over virtual time, the entire run — final clock value,
// every counter, every per-migration exit code — must replay bit-identically
// for the same seed.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/apps/recovery.h"
#include "src/core/dump_format.h"
#include "src/core/test_programs.h"
#include "src/core/tools.h"
#include "tests/test_util.h"

namespace pmig {
namespace {

using kernel::SyscallApi;
using test::kUserUid;
using test::World;

constexpr int kVictims = 8;

// The soak victim: a daemon-style program that sleeps in a loop forever. Unlike
// /bin/counter it never reads stdin, so a restart that lands it on /dev/null
// stdio (a remote restart has no terminal) does not make it exit — the victim
// stays alive indefinitely on whichever host it ends up on, which is exactly
// the property the soak's conservation invariant counts.
constexpr std::string_view kTickerSource = R"(
        .text
start:
loop:   movi r0, 2
        sys  SYS_sleep
        jmp  loop
)";

int CountAliveVms(World& world, const std::string& host) {
  int alive = 0;
  for (kernel::Proc* p : world.host(host).ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++alive;
  }
  return alive;
}

// Names of dump-machinery files left in a host's /usr/tmp.
std::vector<std::string> OrphanedDumpFiles(World& world, const std::string& host) {
  std::vector<std::string> orphans;
  kernel::Kernel& k = world.host(host);
  auto r = k.vfs().Resolve(k.vfs().RootState(), "/usr/tmp", vfs::Follow::kAll, nullptr);
  if (!r.ok()) return orphans;
  for (const auto& [name, inode] : r->inode->entries) {
    for (const char* prefix : {"a.out", "files", "stack", "ready", "claim"}) {
      if (name.rfind(prefix, 0) == 0) {
        orphans.push_back(host + ":" + name);
        break;
      }
    }
  }
  return orphans;
}

// One full soak run. Returns a fingerprint covering everything observable:
// the final virtual clock, each migration's exit code, the per-host survivor
// counts, and every aggregated metric counter. Two runs with the same seed
// must produce the same string.
std::string RunChaos(uint64_t seed, bool with_partitions = false) {
  test::WorldOptions options;
  options.num_hosts = 3;  // brick, schooner, brador
  options.metrics = true;
  options.spans = true;
  options.flight_recorder = true;
  options.faults.enabled = true;
  options.faults.seed = seed;
  options.faults.net_send_failure_rate = 0.25;
  options.faults.dump_corruption_rate = 0.15;
  options.faults.crashes.push_back({"schooner", sim::Seconds(8), sim::Seconds(20)});
  if (with_partitions) {
    // On top of the crash/loss schedule: brador becomes an island for nearly a
    // minute in the middle of the migration phase (the serial legs run out to
    // ~130 s virtual), and then the brick->schooner direction flaps. Disarm()
    // heals whatever is still cut when the drain begins, so the post-heal
    // reaper passes settle everything the partitions orphaned.
    sim::PartitionFault island;
    island.group_a = {"brador"};
    island.begin = sim::Seconds(20);
    island.heal = sim::Seconds(70);
    options.faults.partitions.push_back(island);
    sim::PartitionFault flap;
    flap.group_a = {"brick"};
    flap.group_b = {"schooner"};
    flap.begin = sim::Seconds(70);
    flap.heal = sim::Seconds(140);
    flap.one_way = true;
    flap.flap_period = sim::Seconds(2);
    options.faults.partitions.push_back(flap);
  }
  World world(options);

  core::InstallProgram(world.host("brick"), "/bin/ticker", kTickerSource);
  std::vector<int32_t> victims;
  for (int i = 0; i < kVictims; ++i) {
    const int32_t pid = world.StartVm("brick", "/bin/ticker");
    EXPECT_GT(pid, 0);
    victims.push_back(pid);
  }
  for (const int32_t pid : victims) {
    // Quiesced for a ticker means asleep in its loop (kSleeping, not kBlocked —
    // there is no terminal read to block on).
    EXPECT_TRUE(world.cluster().RunUntil(
        [&world, pid] {
          const kernel::Proc* p = world.host("brick").FindProc(pid);
          return p != nullptr && p->state == kernel::ProcState::kSleeping;
        },
        sim::Seconds(120)));
  }

  net::Network* net = &world.cluster().network();
  std::ostringstream fp;
  int failed_legs = 0;
  for (int i = 0; i < kVictims; ++i) {
    const int32_t pid = victims[static_cast<size_t>(i)];
    const std::string target = (i % 2 == 0) ? "schooner" : "brador";
    auto rc = std::make_shared<int>(-1);
    kernel::SpawnOptions opts;
    opts.creds = {kUserUid, 10, kUserUid, 10};
    const int32_t mig = world.host("brick").SpawnNative(
        "migrate",
        [rc, net, pid, target](SyscallApi& api) {
          *rc = core::Migrate(api, *net, pid, "brick", target,
                              /*use_daemon=*/false, core::MigrateOptions::Robust());
          return *rc;
        },
        opts);
    EXPECT_TRUE(world.RunUntilExited("brick", mig, sim::Seconds(600)));
    if (*rc != core::kToolOk) ++failed_legs;
    fp << "rc" << i << "=" << *rc << ";";
  }

  // Fault phase over: stop injecting and let everything in flight settle —
  // well past schooner's scheduled recovery, so frozen processes thaw.
  world.cluster().faults().Disarm();
  world.cluster().RunFor(sim::Seconds(40));

  if (with_partitions) {
    // The healed cluster runs reaper passes: every dump set a partition
    // orphaned must be settled — revived if its process died with it,
    // collected if a survivor runs elsewhere — before the leak scan below.
    // Two stateful passes a grace period apart so incomplete debris ages out.
    auto reap_state = std::make_shared<apps::ReaperState>();
    auto reaper_pass = [&world, net, reap_state] {
      const int32_t rp = world.host("brick").SpawnNative(
          "preap",
          [net, reap_state](SyscallApi& api) {
            apps::ReaperOptions ropts;
            ropts.grace = sim::Seconds(5);
            ropts.use_daemon = false;
            const apps::ReaperReport report =
                apps::ReapOrphans(api, *net, ropts, reap_state.get());
            (void)report;
            return 0;
          },
          kernel::SpawnOptions{});
      EXPECT_TRUE(world.RunUntilExited("brick", rp, sim::Seconds(600)));
    };
    reaper_pass();
    world.cluster().RunFor(sim::Seconds(6));
    reaper_pass();
    world.cluster().RunFor(sim::Seconds(10));
  }

  int total_alive = 0;
  for (const std::string host : {"brick", "schooner", "brador"}) {
    const int alive = CountAliveVms(world, host);
    total_alive += alive;
    fp << host << "=" << alive << ";";
    for (const std::string& orphan : OrphanedDumpFiles(world, host)) {
      ADD_FAILURE() << "seed " << seed << ": orphaned dump file " << orphan;
    }
    if (with_partitions) {
      EXPECT_FALSE(world.FileExists(host, "/var/lease/placement"))
          << "seed " << seed << ": leaked placement lease on " << host;
    }
  }
  EXPECT_EQ(total_alive, kVictims) << "seed " << seed << " lost a process";

  if (with_partitions) {
    // Exactly-once across the heal: every victim exists exactly once — either
    // still under its original identity on brick, or as the one migrant/revival
    // carrying that identity. Two copies would mean a fallback restart AND a
    // reaper resurrection of the same dump set.
    for (const int32_t pid : victims) {
      int copies = 0;
      for (const std::string host : {"brick", "schooner", "brador"}) {
        for (kernel::Proc* p : world.host(host).ListProcs()) {
          if (p->kind != kernel::ProcKind::kVm || !p->Alive()) continue;
          const bool original = host == "brick" && p->pid == pid && p->old_pid == 0;
          const bool migrant = p->old_pid == pid && p->old_host == "brick";
          if (original || migrant) ++copies;
        }
      }
      EXPECT_EQ(copies, 1) << "seed " << seed << ": victim " << pid << " exists "
                           << copies << " times";
    }
  }

  // Every migrate leg that failed or fell back must have left a flight-recorder
  // post-mortem (the kernel may add more for aborted dumps), each tagged with a
  // trace id and a failing phase. The count is part of the replay fingerprint.
  const auto& postmortems = world.cluster().flight_recorder().postmortems();
  EXPECT_GE(static_cast<int>(postmortems.size()), failed_legs)
      << "seed " << seed << ": a failed migrate left no post-mortem";
  for (const auto& pm : postmortems) {
    EXPECT_NE(pm.reason.find("phase="), std::string::npos) << pm.reason;
  }
  fp << "pm=" << postmortems.size() << ";";

  fp << "t=" << world.cluster().clock().now() << ";";
  const sim::MetricsRegistry metrics = world.cluster().AggregateMetrics();
  for (const auto& [name, value] : metrics.counters()) {
    fp << name << "=" << value << ";";
  }
  // A soak that injected nothing proves nothing: the schedule must actually
  // have bitten at least once for the invariants above to mean anything.
  const int64_t injected = metrics.Counter("fault.injected.net_send") +
                           metrics.Counter("fault.injected.nfs_io") +
                           metrics.Counter("fault.injected.disk_full") +
                           metrics.Counter("fault.injected.dump_corrupt");
  EXPECT_GT(injected, 0) << "seed " << seed << " injected no faults";
  if (with_partitions) {
    EXPECT_GT(metrics.Counter("fault.injected.partition"), 0)
        << "seed " << seed << " never cut a link";
  }
  return fp.str();
}

class ChaosSoak : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSoak, NoProcessLostAndDeterministicReplay) {
  const uint64_t seed = GetParam();
  const std::string first = RunChaos(seed);
  const std::string second = RunChaos(seed);
  EXPECT_EQ(first, second) << "seed " << seed << " did not replay deterministically";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak, ::testing::Values(1u, 2u, 3u));

// The same soak with network partitions layered over the fault schedule: an
// island, a flapping one-way link, the crash, and the packet loss all at once.
// Same contract — nothing lost, nothing duplicated, nothing leaked, and the
// whole run (including the post-heal reaper passes) replays bit-identically.
class PartitionChaosSoak : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionChaosSoak, NothingLostNothingDuplicatedDeterministicReplay) {
  const uint64_t seed = GetParam();
  const std::string first = RunChaos(seed, /*with_partitions=*/true);
  const std::string second = RunChaos(seed, /*with_partitions=*/true);
  EXPECT_EQ(first, second) << "seed " << seed << " did not replay deterministically";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionChaosSoak, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace pmig
